#include "xcl/queue.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scibench/timer.hpp"
#include "xcl/check/session.hpp"
#include "xcl/thread_pool.hpp"

namespace eod::xcl {

namespace {

// Queue-level instruments (DESIGN.md §11).  Histograms are recorded only
// while timed metrics are on; the counters are relaxed adds on the rare
// per-command (not per-group) path and stay unconditional.
obs::Counter& g_q_kernels = obs::counter("queue.kernel_commands");
obs::Counter& g_q_transfers = obs::counter("queue.transfer_commands");
obs::Counter& g_q_copies = obs::counter("queue.copy_commands");
obs::Counter& g_q_fills = obs::counter("queue.fill_commands");
obs::Counter& g_q_bytes_written = obs::counter("queue.bytes_written");
obs::Counter& g_q_bytes_read = obs::counter("queue.bytes_read");
obs::Histogram& g_q_kernel_host_ns = obs::histogram("queue.kernel_host_ns");
obs::Histogram& g_q_transfer_host_ns =
    obs::histogram("queue.transfer_host_ns");

// Process-wide command id allocator.  Ids are handed out in enqueue order
// across all queues and never reused, so any *real* event in a wait list has
// an id strictly below the command being enqueued — the dependency graph is
// acyclic by construction, and a forward-pointing id can only come from a
// forged event (rejected with kInvalidEventWaitList).
std::atomic<std::uint64_t> g_next_event_id{1};

// Process-wide queue sequence ids for the trace's per-command "q" arg: a
// stable queue identity that survives the JSON round-trip, so eod_prof can
// reconstruct same-queue barrier ordering from the artifact alone.
std::atomic<std::uint32_t> g_next_queue_id{1};

// Folds the executor-counter delta of one launch into the queue's running
// dispatch totals.  All fields are delta-based: the high-water mark is only
// folded in when it *rose during this command* — the global gauge keeps its
// maximum across the whole process, so unconditionally max-ing it in would
// leak another queue's (or an earlier run's) high-water mark into this
// queue's per-queue stats.
void accumulate_dispatch(ExecutorStats& total, const ExecutorStats& before,
                         const ExecutorStats& after) {
  total.launches += after.launches - before.launches;
  total.tasks_executed += after.tasks_executed - before.tasks_executed;
  total.chunks_claimed += after.chunks_claimed - before.chunks_claimed;
  total.chunks_stolen += after.chunks_stolen - before.chunks_stolen;
  total.groups_loop += after.groups_loop - before.groups_loop;
  total.groups_fiber += after.groups_fiber - before.groups_fiber;
  total.groups_span += after.groups_span - before.groups_span;
  total.groups_checked += after.groups_checked - before.groups_checked;
  if (after.arena_bytes_hwm > before.arena_bytes_hwm) {
    total.arena_bytes_hwm =
        std::max(total.arena_bytes_hwm, after.arena_bytes_hwm);
  }
  total.fiber_stacks_created +=
      after.fiber_stacks_created - before.fiber_stacks_created;
  total.fiber_stacks_reused +=
      after.fiber_stacks_reused - before.fiber_stacks_reused;
}

[[nodiscard]] const char* device_trace_cat(CommandKind k) noexcept {
  switch (k) {
    case CommandKind::kKernel:
      return "device:kernel";
    case CommandKind::kWrite:
    case CommandKind::kRead:
      return "device:transfer";
    case CommandKind::kCopy:
      return "device:copy";
    case CommandKind::kFill:
      return "device:fill";
    case CommandKind::kPeerCopy:
      return "device:peer";
  }
  return "device:unknown";
}

// Process-wide interconnect model for peer copies (DESIGN.md §14).  Relaxed
// atomics: installation happens once at testbed construction, long before
// any multi-queue traffic.
std::atomic<const LinkModel*> g_link_model{nullptr};

}  // namespace

void set_link_model(const LinkModel* model) noexcept {
  g_link_model.store(model, std::memory_order_release);
}

const LinkModel* link_model() noexcept {
  return g_link_model.load(std::memory_order_acquire);
}

const char* to_string(QueueMode mode) noexcept {
  return mode == QueueMode::kOutOfOrder ? "ooo" : "inorder";
}

std::optional<QueueMode> parse_queue_mode(std::string_view name) noexcept {
  if (name == "inorder" || name == "in-order") return QueueMode::kInOrder;
  if (name == "ooo" || name == "out-of-order" || name == "outoforder") {
    return QueueMode::kOutOfOrder;
  }
  return std::nullopt;
}

QueueMode default_queue_mode() noexcept {
  static const QueueMode mode = [] {
    if (const char* v = std::getenv("EOD_QUEUE")) {
      if (auto parsed = parse_queue_mode(v)) return *parsed;
    }
    return QueueMode::kInOrder;
  }();
  return mode;
}

Queue::Queue(Context& ctx, std::optional<QueueMode> mode)
    : ctx_(&ctx),
      mode_(mode.value_or(default_queue_mode())),
      // lint: relaxed-ok(unique id generation needs atomicity only)
      trace_queue_id_(g_next_queue_id.fetch_add(1, std::memory_order_relaxed)) {
  ctx_->register_queue(this);
}

Queue::~Queue() {
  ctx_->unregister_queue(this);
  // clReleaseCommandQueue performs an implicit flush; never throw from here.
  try {
    drain(0);
  } catch (...) {
  }
}

void Queue::drain_pending() {
  if (!pending_.empty()) drain(0);
}

bool Queue::eager() const noexcept {
  // The shadow-memory checker validates one command at a time against a
  // serial reference; concurrent drains would race its shadow state, so an
  // active session pins every queue to eager in-enqueue-order execution —
  // always a correct linearization of the DAG, since wait lists only point
  // backwards.
  return mode_ == QueueMode::kInOrder ||
         check::CheckSession::active() != nullptr;
}

std::uint32_t Queue::obs_lane() {
  if (obs_lane_ < 0) {
    obs_lane_ = obs::alloc_device_lane("queue:" + device().info().name);
  }
  return static_cast<std::uint32_t>(obs_lane_);
}

std::uint32_t Queue::obs_transfer_lane() {
  if (obs_transfer_lane_ < 0) {
    obs_transfer_lane_ =
        obs::alloc_device_lane("queue:" + device().info().name + " transfers");
  }
  return static_cast<std::uint32_t>(obs_transfer_lane_);
}

void Queue::emit_device_span(const Event& e,
                             const std::span<const Event>* wait,
                             double busy_s) {
  // Mirror every command onto this queue's modeled-device lanes (pid 2).
  // Device timestamps are the virtual timeline in ns, deliberately not
  // rebased against the host clock — the viewer shows them as a separate
  // process, so the timebases never visually overlap.  An out-of-order
  // queue splits link transfers onto a second lane so a transfer drawn
  // under a kernel is visibly overlapping it.
  if (!obs::tracing_enabled()) return;
  std::uint32_t lane = obs_lane();
  if (mode_ == QueueMode::kOutOfOrder && is_link_transfer(e.kind)) {
    lane = obs_transfer_lane();
  }
  // The DAG argument block (DESIGN.md §11/§16): enough to rebuild the
  // command graph from the artifact alone.  `barrier` covers the in-order
  // chain and the ooo implicit barrier; explicit wait lists are recorded as
  // ids even when cross-queue, so peer-copy edges survive the round-trip.
  obs::CommandSpanArgs args;
  args.cmd_id = e.id;
  args.queue_id = trace_queue_id_;
  args.barrier = mode_ == QueueMode::kInOrder || wait == nullptr;
  const double dur_s = e.modeled_seconds();
  if (busy_s >= 0.0 && busy_s < dur_s) {
    args.busy_ns = static_cast<std::uint64_t>(busy_s * 1e9);
  }
  args.bytes = e.bytes;
  args.energy_j = e.energy_j;
  if (wait != nullptr) {
    for (const Event& w : *wait) {
      if (args.dep_count >= obs::kTraceDepCap) break;
      args.deps[args.dep_count++] = w.id;
    }
  }
  obs::emit_command_span(lane, e.label.c_str(), device_trace_cat(e.kind),
                         static_cast<std::uint64_t>(e.modeled_start_s * 1e9),
                         static_cast<std::uint64_t>(dur_s * 1e9), args);
}

bool Queue::has_pending(std::uint64_t id) const noexcept {
  // pending_ is ordered by ascending id (enqueue order; drains preserve the
  // relative order of survivors), so membership is a binary search.
  auto it = std::lower_bound(
      pending_.begin(), pending_.end(), id,
      [](const PendingCmd& c, std::uint64_t v) { return c.id < v; });
  return it != pending_.end() && it->id == id;
}

void Queue::resolve_wait_list(const std::span<const Event>* wait) {
  if (wait == nullptr) return;
  // lint: relaxed-ok(forgery check reads the id counter; value-only)
  const std::uint64_t next = g_next_event_id.load(std::memory_order_relaxed);
  for (const Event& w : *wait) {
    require(w.id != 0, Status::kInvalidEventWaitList,
            "null event in wait list");
    require(w.id < next, Status::kInvalidEventWaitList,
            "wait list references a not-yet-enqueued command");
    // Cross-queue dependency: the queues' modeled timelines are distinct
    // devices, so the wait is satisfied on the *host* — drain the foreign
    // command (and its closure) here, before this command records.
    if (w.queue != nullptr && w.queue != this && w.queue->has_pending(w.id)) {
      w.queue->drain(w.id);
    }
  }
}

Event Queue::submit(Event e, double duration_s,
                    const std::span<const Event>* wait,
                    std::function<std::uint64_t()> exec,
                    double occupancy_s) {
  resolve_wait_list(wait);
  // lint: relaxed-ok(unique id generation needs atomicity only)
  e.id = g_next_event_id.fetch_add(1, std::memory_order_relaxed);
  e.enqueue_index = next_enqueue_index_++;
  e.queue = this;

  // Modeled placement.  In-order: one contiguous chain, exactly the
  // pre-DAG timeline.  Out-of-order: the command becomes ready when its
  // dependencies end (implicit chain = the previously enqueued command) and
  // starts when its lane — kernel-side work vs link transfers — is also
  // free.  Durations are mode-independent; only placement changes.
  //
  // Foreign wait-list events contribute their modeled end times in either
  // mode: every queue's virtual timeline shares one timebase (all start at
  // 0 when their contexts are created together), so a multi-device pipeline
  // whose halo copy waits on a remote kernel is placed after that kernel on
  // the shared clock — the cross-device makespan is causally consistent
  // (DESIGN.md §14).  Functionally the foreign command was already drained
  // on the host by resolve_wait_list above.
  std::vector<std::uint64_t> deps;
  double ready_s = 0.0;
  const bool ooo = mode_ == QueueMode::kOutOfOrder;
  if (!ooo) {
    ready_s = chain_end_s_;
    if (wait != nullptr) {
      for (const Event& w : *wait) ready_s = std::max(ready_s, w.modeled_end_s);
    }
  } else if (wait == nullptr) {
    // No wait list: the command joins the implicit program-order chain,
    // which is a barrier over *everything* enqueued before it — code that
    // never mentions events must observe in-order semantics even after an
    // explicit-DAG section forked the pending graph.  Modeled readiness is
    // therefore the furthest end seen so far, and execution must wait on
    // every still-pending command, not only the previous one.
    ready_s = now_s_;
    // lint: alloc-ok(implicit-chain barrier materialises the pending id list)
    deps.reserve(pending_.size());
    // lint: alloc-ok(sized by the reserve above; no reallocation)
    for (const PendingCmd& c : pending_) deps.push_back(c.id);
  } else {
    for (const Event& w : *wait) {
      ready_s = std::max(ready_s, w.modeled_end_s);
      if (w.queue != this) continue;  // foreign: host-synchronised above
      // lint: alloc-ok(bounded by the caller's wait list; typically tiny)
      if (has_pending(w.id)) deps.push_back(w.id);
    }
  }
  double& lane_end = (ooo && is_link_transfer(e.kind)) ? transfer_lane_end_s_
                                                       : kernel_lane_end_s_;
  const double start_s = ooo ? std::max(ready_s, lane_end) : ready_s;
  e.modeled_start_s = start_s;
  e.modeled_end_s = start_s + duration_s;
  // The lane frees after the command's *occupancy*, which for pipelined
  // link transfers is shorter than the full latency-inclusive duration;
  // dependants still wait for modeled_end_s via the wait list.
  const double busy_s = occupancy_s >= 0.0 ? occupancy_s : duration_s;
  lane_end = std::max(lane_end, start_s + busy_s);
  chain_end_s_ = e.modeled_end_s;
  now_s_ = std::max(now_s_, e.modeled_end_s);

  // lint: alloc-ok(event log growth is amortised O(1); needed for lookup)
  events_.push_back(std::move(e));
  completion_dirty_ = true;
  Event& recorded = events_.back();
  emit_device_span(recorded, wait, busy_s);

  if (eager()) {
    // A checker session may activate mid-stream; flush anything the queue
    // deferred before it so execution order stays a DAG linearization.
    if (!pending_.empty()) drain(0);
    const ExecutorStats before = executor_stats();
    if (exec) recorded.host_ns = exec();
    accumulate_dispatch(dispatch_stats_, before, executor_stats());
    return recorded;
  }

  PendingCmd cmd;
  cmd.id = recorded.id;
  cmd.event_index = events_.size() - 1;
  cmd.deps = std::move(deps);
  cmd.exec = std::move(exec);
  // lint: alloc-ok(pending DAG node recording; amortised O(1))
  pending_.push_back(std::move(cmd));
  return recorded;
}

void Queue::drain(std::uint64_t target_id) {
  if (pending_.empty()) return;

  // Select the commands to run: everything (target 0) or the target's
  // transitive same-queue dependency closure.
  std::vector<char> selected(pending_.size(), 0);
  if (target_id == 0) {
    std::fill(selected.begin(), selected.end(), 1);
  } else {
    auto index_of = [this](std::uint64_t id) -> std::ptrdiff_t {
      auto it = std::lower_bound(
          pending_.begin(), pending_.end(), id,
          [](const PendingCmd& c, std::uint64_t v) { return c.id < v; });
      if (it == pending_.end() || it->id != id) return -1;
      return it - pending_.begin();
    };
    const std::ptrdiff_t root = index_of(target_id);
    if (root < 0) return;  // already executed
    std::vector<std::size_t> stack{static_cast<std::size_t>(root)};
    selected[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      const std::size_t i = stack.back();
      stack.pop_back();
      for (std::uint64_t dep : pending_[i].deps) {
        const std::ptrdiff_t j = index_of(dep);
        if (j >= 0 && !selected[static_cast<std::size_t>(j)]) {
          selected[static_cast<std::size_t>(j)] = 1;
          // lint: alloc-ok(drain-time DFS; drain is a sync point)
          stack.push_back(static_cast<std::size_t>(j));
        }
      }
    }
  }

  // Detach the selection from the pending list before running it: commands
  // being drained are no longer "pending", and any survivor's edge into the
  // drained set now reads as satisfied.
  std::vector<PendingCmd> cmds;
  std::vector<PendingCmd> rest;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    // lint: alloc-ok(drain-time partition of the pending list)
    (selected[i] ? cmds : rest).push_back(std::move(pending_[i]));
  }
  pending_ = std::move(rest);

  std::unordered_map<std::uint64_t, std::size_t> position;
  // lint: alloc-ok(drain-time id index, sized up front)
  position.reserve(cmds.size());
  // lint: alloc-ok(drain-time id index; capacity reserved above)
  for (std::size_t i = 0; i < cmds.size(); ++i) position.emplace(cmds[i].id, i);

  // Kahn-style wave release: every command whose in-set dependencies have
  // completed runs in the current wave.  A single-command wave runs on the
  // calling thread, so the kernel inside keeps the ThreadPool's full
  // group-level parallelism; a multi-command wave fans the commands out over
  // the pool and each kernel's nested parallel_for then runs inline — the
  // pool parallelises across commands instead of within one.
  const ExecutorStats before = executor_stats();
  std::vector<char> done(cmds.size(), 0);
  std::size_t executed = 0;
  std::vector<std::size_t> wave;
  while (executed < cmds.size()) {
    wave.clear();
    for (std::size_t i = 0; i < cmds.size(); ++i) {
      if (done[i]) continue;
      bool ready = true;
      for (std::uint64_t dep : cmds[i].deps) {
        auto it = position.find(dep);
        if (it != position.end() && !done[it->second]) {
          ready = false;
          break;
        }
      }
      // lint: alloc-ok(drain-time wave assembly; drain is a sync point)
      if (ready) wave.push_back(i);
    }
    // Unreachable through the public API (ids only point backwards), but a
    // corrupted graph must fail loudly rather than spin.
    require(!wave.empty(), Status::kInvalidOperation,
            "dependency cycle in command graph");
    auto run_one = [&](std::size_t k) {
      PendingCmd& c = cmds[wave[k]];
      if (c.exec) events_[c.event_index].host_ns = c.exec();
    };
    if (wave.size() == 1) {
      run_one(0);
    } else {
      ThreadPool::global().parallel_for(wave.size(), run_one);
    }
    for (std::size_t i : wave) done[i] = 1;
    executed += wave.size();
  }
  accumulate_dispatch(dispatch_stats_, before, executor_stats());
  completion_dirty_ = true;  // host_ns backfills invalidate the sorted view
}

void Queue::wait(const Event& e) {
  if (e.id == 0) return;
  if (e.queue == this) {
    kernels_since_sync_ = 0;  // clWaitForEvents is a host synchronisation
    if (has_pending(e.id)) drain(e.id);
    return;
  }
  if (e.queue != nullptr) e.queue->wait(e);
}

double Queue::finish() {
  drain(0);
  kernels_since_sync_ = 0;
  return now_s_;
}

void Queue::clear_events() {
  drain(0);
  events_.clear();
  completion_order_.clear();
  completion_dirty_ = false;
  launches_.clear();
  next_enqueue_index_ = 0;
}

const std::vector<Event>& Queue::events() const {
  if (completion_dirty_) {
    completion_order_ = events_;
    std::stable_sort(completion_order_.begin(), completion_order_.end(),
                     [](const Event& a, const Event& b) {
                       if (a.modeled_end_s != b.modeled_end_s) {
                         return a.modeled_end_s < b.modeled_end_s;
                       }
                       return a.enqueue_index < b.enqueue_index;
                     });
    completion_dirty_ = false;
  }
  return completion_order_;
}

Event Queue::enqueue(const Kernel& kernel, NDRange range,
                     const WorkloadProfile& profile) {
  return launch(kernel, range, profile, nullptr);
}

Event Queue::enqueue(const Kernel& kernel, NDRange range,
                     const WorkloadProfile& profile,
                     std::span<const Event> wait) {
  return launch(kernel, range, profile, &wait);
}

Event Queue::launch(const Kernel& kernel, NDRange range,
                    const WorkloadProfile& profile,
                    const std::span<const Event>* wait) {
  range.resolve_local(device().info().max_work_group_size);

  KernelLaunchStats stats{kernel.name(), range, profile,
                          kernels_since_sync_++};
  // lint: alloc-ok(opt-in launch recording for tests and diagnostics)
  if (record_launches_) launches_.push_back(stats);
  const TimingModel& model = device().model();
  const double dt = model.kernel_seconds(stats);
  const double watts = model.kernel_power_watts(stats);

  g_q_kernels.add(1);

  Event e;
  e.kind = CommandKind::kKernel;
  e.label = kernel.name();
  e.energy_j = watts * dt;
  // Kernel, range and device are captured by value/pointer: execution may
  // be deferred past the caller's scope in an out-of-order queue.
  auto exec = [kernel, range, dev = &device(), label = e.label,
               groups = static_cast<double>(range.num_groups()),
               functional = functional_]() -> std::uint64_t {
    const std::uint64_t t0 = scibench::now_ns();
    if (functional) execute_ndrange(kernel, range, *dev);
    const std::uint64_t t1 = scibench::now_ns();
    if (obs::timed_metrics_enabled()) g_q_kernel_host_ns.record(t1 - t0);
    if (obs::tracing_enabled()) {
      // lint: raw-span-ok(complete event from already-measured t0/duration)
      obs::emit_complete_arg(label.c_str(), "queue:kernel", t0, t1 - t0,
                             "groups", groups);
    }
    return t1 - t0;
  };
  return submit(std::move(e), dt, wait, std::move(exec));
}

Event Queue::write_bytes(Buffer& dst, const void* src, std::size_t offset,
                         std::size_t bytes,
                         const std::span<const Event>* wait) {
  require(offset + bytes <= dst.bytes(), Status::kInvalidBufferSize,
          "write exceeds buffer size");
  const bool blocking = wait == nullptr;
  if (blocking) kernels_since_sync_ = 0;  // blocking transfers synchronise

  g_q_transfers.add(1);
  g_q_bytes_written.add(static_cast<std::int64_t>(bytes));
  const double dt =
      device().model().transfer_seconds(bytes, TransferDir::kHostToDevice);

  Event e;
  e.kind = CommandKind::kWrite;
  e.label = transfer_label("write", dst.name(), bytes);
  e.bytes = bytes;
  auto exec = [dptr = dst.data(), src, offset, bytes,
               label = e.label]() -> std::uint64_t {
    const std::uint64_t t0 = scibench::now_ns();
    std::memcpy(dptr + offset, src, bytes);
    check::on_host_write(dptr, offset, bytes);  // transfers initialize
    const std::uint64_t t1 = scibench::now_ns();
    if (obs::timed_metrics_enabled()) g_q_transfer_host_ns.record(t1 - t0);
    if (obs::tracing_enabled()) {
      // lint: raw-span-ok(complete event from already-measured t0/duration)
      obs::emit_complete_arg(label.c_str(), "queue:transfer", t0, t1 - t0,
                             "bytes", static_cast<double>(bytes));
    }
    return t1 - t0;
  };
  Event out = submit(std::move(e), dt, wait, std::move(exec));
  if (blocking && has_pending(out.id)) {
    drain(out.id);
    out = events_.back();  // pick up the backfilled host_ns
  }
  return out;
}

Event Queue::read_bytes(const Buffer& src, void* dst, std::size_t offset,
                        std::size_t bytes,
                        const std::span<const Event>* wait) {
  require(offset + bytes <= src.bytes(), Status::kInvalidBufferSize,
          "read exceeds buffer size");
  const bool blocking = wait == nullptr;
  if (blocking) kernels_since_sync_ = 0;  // blocking transfers synchronise

  g_q_transfers.add(1);
  g_q_bytes_read.add(static_cast<std::int64_t>(bytes));
  const double dt =
      device().model().transfer_seconds(bytes, TransferDir::kDeviceToHost);

  Event e;
  e.kind = CommandKind::kRead;
  e.label = transfer_label("read", src.name(), bytes);
  e.bytes = bytes;
  const void* sptr = src.data() + offset;
  auto exec = [sptr, dst, bytes, label = e.label]() -> std::uint64_t {
    const std::uint64_t t0 = scibench::now_ns();
    std::memcpy(dst, sptr, bytes);
    const std::uint64_t t1 = scibench::now_ns();
    if (obs::timed_metrics_enabled()) g_q_transfer_host_ns.record(t1 - t0);
    if (obs::tracing_enabled()) {
      // lint: raw-span-ok(complete event from already-measured t0/duration)
      obs::emit_complete_arg(label.c_str(), "queue:transfer", t0, t1 - t0,
                             "bytes", static_cast<double>(bytes));
    }
    return t1 - t0;
  };
  Event out = submit(std::move(e), dt, wait, std::move(exec));
  if (blocking && has_pending(out.id)) {
    drain(out.id);
    out = events_.back();
  }
  return out;
}

Event Queue::enqueue_copy(const Buffer& src, Buffer& dst) {
  return copy_impl(src, dst, nullptr);
}

Event Queue::enqueue_copy(const Buffer& src, Buffer& dst,
                          std::span<const Event> wait) {
  return copy_impl(src, dst, &wait);
}

Event Queue::copy_impl(const Buffer& src, Buffer& dst,
                       const std::span<const Event>* wait) {
  require(src.bytes() <= dst.bytes(), Status::kInvalidBufferSize,
          "copy exceeds destination buffer");
  std::function<void()> body;
  if (functional_) {
    body = [sptr = src.data(), dptr = dst.data(), bytes = src.bytes()] {
      std::memcpy(dptr, sptr, bytes);
      check::on_host_write(dptr, 0, bytes);
    };
  }
  return device_side_op(CommandKind::kCopy,
                        transfer_label("copy", dst.name(), src.bytes()),
                        2 * src.bytes(),  // read + write
                        std::move(body), wait);
}

Event Queue::enqueue_peer_copy(const Buffer& src, std::size_t src_offset,
                               Buffer& dst, std::size_t dst_offset,
                               std::size_t bytes) {
  return peer_copy_impl(src, src_offset, dst, dst_offset, bytes, nullptr);
}

Event Queue::enqueue_peer_copy(const Buffer& src, std::size_t src_offset,
                               Buffer& dst, std::size_t dst_offset,
                               std::size_t bytes,
                               std::span<const Event> wait) {
  return peer_copy_impl(src, src_offset, dst, dst_offset, bytes, &wait);
}

Event Queue::peer_copy_impl(const Buffer& src, std::size_t src_offset,
                            Buffer& dst, std::size_t dst_offset,
                            std::size_t bytes,
                            const std::span<const Event>* wait) {
  require(src_offset + bytes <= src.bytes(), Status::kInvalidBufferSize,
          "peer copy exceeds source buffer");
  require(dst_offset + bytes <= dst.bytes(), Status::kInvalidBufferSize,
          "peer copy exceeds destination buffer");
  require(&dst.context() == ctx_, Status::kInvalidValue,
          "peer copy destination must belong to this queue's context");

  // Link cost: the installed topology model when one exists (direct P2P or
  // host-staged, its call), else conservative host staging priced by the
  // two endpoints' own host-link models.  Same-device pairs still go
  // through the model — a simulated multi-device rig may map several
  // contexts onto one spec entry.
  const Device& src_dev = src.context().device();
  const Device& dst_dev = ctx_->device();
  double dt = 0.0;
  double busy = -1.0;  // lane occupancy; -1 = full duration (no pipelining)
  if (const LinkModel* lm = link_model()) {
    dt = lm->peer_seconds(src_dev, dst_dev, bytes);
    busy = lm->peer_occupancy_seconds(src_dev, dst_dev, bytes);
  } else {
    dt = src_dev.model().transfer_seconds(bytes, TransferDir::kDeviceToHost) +
         dst_dev.model().transfer_seconds(bytes, TransferDir::kHostToDevice);
  }

  g_q_transfers.add(1);
  g_q_bytes_written.add(static_cast<std::int64_t>(bytes));

  Event e;
  e.kind = CommandKind::kPeerCopy;
  e.label = transfer_label("peer", dst.name(), bytes);
  e.bytes = bytes;
  std::function<void()> body;
  if (functional_) {
    body = [sptr = src.data() + src_offset, dbase = dst.data(), dst_offset,
            bytes] {
      std::memcpy(dbase + dst_offset, sptr, bytes);
      check::on_host_write(dbase, dst_offset, bytes);
    };
  }
  auto exec = [body = std::move(body), label = e.label,
               bytes]() -> std::uint64_t {
    const std::uint64_t t0 = scibench::now_ns();
    if (body) body();
    const std::uint64_t t1 = scibench::now_ns();
    if (obs::timed_metrics_enabled()) g_q_transfer_host_ns.record(t1 - t0);
    if (obs::tracing_enabled()) {
      // lint: raw-span-ok(complete event from already-measured t0/duration)
      obs::emit_complete_arg(label.c_str(), "queue:transfer", t0, t1 - t0,
                             "bytes", static_cast<double>(bytes));
    }
    return t1 - t0;
  };
  return submit(std::move(e), dt, wait, std::move(exec), busy);
}

Event Queue::device_side_op(CommandKind kind, std::string label,
                            std::size_t bytes, std::function<void()> body,
                            const std::span<const Event>* wait) {
  // Device-side moves run at global-memory bandwidth, not over the host
  // interconnect; model them as a streaming launch of the right size.
  WorkloadProfile p;
  p.bytes_read = static_cast<double>(bytes) / 2;
  p.bytes_written = static_cast<double>(bytes) / 2;
  p.working_set_bytes = static_cast<double>(bytes);
  p.pattern = AccessPattern::kStreaming;
  KernelLaunchStats stats{label, NDRange(std::max<std::size_t>(
                                     1, bytes / sizeof(float))),
                          p, kernels_since_sync_++};
  const double dt = device().model().kernel_seconds(stats);

  (kind == CommandKind::kCopy ? g_q_copies : g_q_fills).add(1);

  Event e;
  e.kind = kind;
  e.label = std::move(label);
  e.bytes = bytes;  // modeled device-memory traffic of the copy/fill
  e.energy_j = device().model().kernel_power_watts(stats) * dt;
  auto exec = [body = std::move(body)]() -> std::uint64_t {
    if (!body) return 0;
    const std::uint64_t t0 = scibench::now_ns();
    body();
    return scibench::now_ns() - t0;
  };
  return submit(std::move(e), dt, wait, std::move(exec));
}

double Queue::modeled_kernel_seconds() const noexcept {
  double s = 0.0;
  for (const Event& e : events_) {
    if (is_device_side(e.kind)) s += e.modeled_seconds();
  }
  return s;
}

double Queue::modeled_transfer_seconds() const noexcept {
  double s = 0.0;
  for (const Event& e : events_) {
    if (is_link_transfer(e.kind)) s += e.modeled_seconds();
  }
  return s;
}

double Queue::modeled_kernel_energy_j() const noexcept {
  double j = 0.0;
  for (const Event& e : events_) {
    if (is_device_side(e.kind)) j += e.energy_j;
  }
  return j;
}

double Queue::modeled_span_seconds() const noexcept {
  if (events_.empty()) return 0.0;
  double lo = events_.front().modeled_start_s;
  double hi = events_.front().modeled_end_s;
  for (const Event& e : events_) {
    lo = std::min(lo, e.modeled_start_s);
    hi = std::max(hi, e.modeled_end_s);
  }
  return hi - lo;
}

}  // namespace eod::xcl
