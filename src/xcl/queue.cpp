#include "xcl/queue.hpp"

#include <algorithm>
#include <cstring>

#include "scibench/timer.hpp"

namespace eod::xcl {

namespace {

// Folds the executor-counter delta of one launch into the queue's running
// dispatch totals (the high-water mark is a max, not a sum).
void accumulate_dispatch(ExecutorStats& total, const ExecutorStats& before,
                         const ExecutorStats& after) {
  total.launches += after.launches - before.launches;
  total.tasks_executed += after.tasks_executed - before.tasks_executed;
  total.chunks_claimed += after.chunks_claimed - before.chunks_claimed;
  total.chunks_stolen += after.chunks_stolen - before.chunks_stolen;
  total.groups_loop += after.groups_loop - before.groups_loop;
  total.groups_fiber += after.groups_fiber - before.groups_fiber;
  total.groups_span += after.groups_span - before.groups_span;
  total.groups_checked += after.groups_checked - before.groups_checked;
  total.arena_bytes_hwm = std::max(total.arena_bytes_hwm,
                                   after.arena_bytes_hwm);
  total.fiber_stacks_created +=
      after.fiber_stacks_created - before.fiber_stacks_created;
  total.fiber_stacks_reused +=
      after.fiber_stacks_reused - before.fiber_stacks_reused;
}

}  // namespace

Event Queue::enqueue(const Kernel& kernel, NDRange range,
                     const WorkloadProfile& profile) {
  range.resolve_local(device().info().max_work_group_size);

  const std::uint64_t t0 = scibench::now_ns();
  if (functional_) {
    const ExecutorStats before = executor_stats();
    execute_ndrange(kernel, range, device());
    accumulate_dispatch(dispatch_stats_, before, executor_stats());
  }
  const std::uint64_t t1 = scibench::now_ns();

  KernelLaunchStats stats{kernel.name(), range, profile,
                          kernels_since_sync_++};
  if (record_launches_) launches_.push_back(stats);
  const TimingModel& model = device().model();
  const double dt = model.kernel_seconds(stats);
  const double watts = model.kernel_power_watts(stats);

  Event e;
  e.kind = CommandKind::kKernel;
  e.label = kernel.name();
  e.modeled_start_s = now_s_;
  e.modeled_end_s = now_s_ + dt;
  e.host_ns = t1 - t0;
  e.energy_j = watts * dt;
  return push(e);
}

Event Queue::write_bytes(Buffer& dst, const void* src, std::size_t bytes) {
  require(bytes <= dst.bytes(), Status::kInvalidBufferSize,
          "write exceeds buffer size");
  kernels_since_sync_ = 0;  // blocking transfers synchronise the stream
  const std::uint64_t t0 = scibench::now_ns();
  std::memcpy(dst.data(), src, bytes);
  check::on_host_write(dst.data(), 0, bytes);  // transfers initialize
  const std::uint64_t t1 = scibench::now_ns();

  Event e;
  e.kind = CommandKind::kWrite;
  e.label = "write";
  e.modeled_start_s = now_s_;
  e.modeled_end_s =
      now_s_ + device().model().transfer_seconds(bytes,
                                                 TransferDir::kHostToDevice);
  e.host_ns = t1 - t0;
  return push(e);
}

Event Queue::read_bytes(const Buffer& src, void* dst, std::size_t bytes) {
  require(bytes <= src.bytes(), Status::kInvalidBufferSize,
          "read exceeds buffer size");
  kernels_since_sync_ = 0;  // blocking transfers synchronise the stream
  const std::uint64_t t0 = scibench::now_ns();
  std::memcpy(dst, src.data(), bytes);
  const std::uint64_t t1 = scibench::now_ns();

  Event e;
  e.kind = CommandKind::kRead;
  e.label = "read";
  e.modeled_start_s = now_s_;
  e.modeled_end_s =
      now_s_ + device().model().transfer_seconds(bytes,
                                                 TransferDir::kDeviceToHost);
  e.host_ns = t1 - t0;
  return push(e);
}

Event Queue::enqueue_copy(const Buffer& src, Buffer& dst) {
  require(src.bytes() <= dst.bytes(), Status::kInvalidBufferSize,
          "copy exceeds destination buffer");
  if (functional_) {
    std::memcpy(dst.data(), src.data(), src.bytes());
    check::on_host_write(dst.data(), 0, src.bytes());
  }
  return push_device_side_op("copy", 2 * src.bytes());  // read + write
}

Event Queue::push_device_side_op(const char* label, std::size_t bytes) {
  // Device-side moves run at global-memory bandwidth, not over the host
  // interconnect; model them as a streaming launch of the right size.
  WorkloadProfile p;
  p.bytes_read = static_cast<double>(bytes) / 2;
  p.bytes_written = static_cast<double>(bytes) / 2;
  p.working_set_bytes = static_cast<double>(bytes);
  p.pattern = AccessPattern::kStreaming;
  KernelLaunchStats stats{label, NDRange(std::max<std::size_t>(
                                     1, bytes / sizeof(float))),
                          p, kernels_since_sync_++};
  const double dt = device().model().kernel_seconds(stats);
  Event e;
  e.kind = CommandKind::kKernel;
  e.label = label;
  e.modeled_start_s = now_s_;
  e.modeled_end_s = now_s_ + dt;
  e.energy_j = device().model().kernel_power_watts(stats) * dt;
  return push(e);
}

Event& Queue::push(Event e) {
  now_s_ = e.modeled_end_s;
  events_.push_back(std::move(e));
  return events_.back();
}

double Queue::modeled_kernel_seconds() const noexcept {
  double s = 0.0;
  for (const Event& e : events_) {
    if (e.kind == CommandKind::kKernel) s += e.modeled_seconds();
  }
  return s;
}

double Queue::modeled_transfer_seconds() const noexcept {
  double s = 0.0;
  for (const Event& e : events_) {
    if (e.kind != CommandKind::kKernel) s += e.modeled_seconds();
  }
  return s;
}

double Queue::modeled_kernel_energy_j() const noexcept {
  double j = 0.0;
  for (const Event& e : events_) {
    if (e.kind == CommandKind::kKernel) j += e.energy_j;
  }
  return j;
}

}  // namespace eod::xcl
