#include "xcl/queue.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scibench/timer.hpp"

namespace eod::xcl {

namespace {

// Queue-level instruments (DESIGN.md §11).  Histograms are recorded only
// while timed metrics are on; the counters are relaxed adds on the rare
// per-command (not per-group) path and stay unconditional.
obs::Counter& g_q_kernels = obs::counter("queue.kernel_commands");
obs::Counter& g_q_transfers = obs::counter("queue.transfer_commands");
obs::Counter& g_q_bytes_written = obs::counter("queue.bytes_written");
obs::Counter& g_q_bytes_read = obs::counter("queue.bytes_read");
obs::Histogram& g_q_kernel_host_ns = obs::histogram("queue.kernel_host_ns");
obs::Histogram& g_q_transfer_host_ns =
    obs::histogram("queue.transfer_host_ns");

// Folds the executor-counter delta of one launch into the queue's running
// dispatch totals.  All fields are delta-based: the high-water mark is only
// folded in when it *rose during this command* — the global gauge keeps its
// maximum across the whole process, so unconditionally max-ing it in would
// leak another queue's (or an earlier run's) high-water mark into this
// queue's per-queue stats.
void accumulate_dispatch(ExecutorStats& total, const ExecutorStats& before,
                         const ExecutorStats& after) {
  total.launches += after.launches - before.launches;
  total.tasks_executed += after.tasks_executed - before.tasks_executed;
  total.chunks_claimed += after.chunks_claimed - before.chunks_claimed;
  total.chunks_stolen += after.chunks_stolen - before.chunks_stolen;
  total.groups_loop += after.groups_loop - before.groups_loop;
  total.groups_fiber += after.groups_fiber - before.groups_fiber;
  total.groups_span += after.groups_span - before.groups_span;
  total.groups_checked += after.groups_checked - before.groups_checked;
  if (after.arena_bytes_hwm > before.arena_bytes_hwm) {
    total.arena_bytes_hwm =
        std::max(total.arena_bytes_hwm, after.arena_bytes_hwm);
  }
  total.fiber_stacks_created +=
      after.fiber_stacks_created - before.fiber_stacks_created;
  total.fiber_stacks_reused +=
      after.fiber_stacks_reused - before.fiber_stacks_reused;
}

}  // namespace

std::uint32_t Queue::obs_lane() {
  if (obs_lane_ < 0) {
    obs_lane_ = obs::alloc_device_lane("queue:" + device().info().name);
  }
  return static_cast<std::uint32_t>(obs_lane_);
}

Event Queue::enqueue(const Kernel& kernel, NDRange range,
                     const WorkloadProfile& profile) {
  range.resolve_local(device().info().max_work_group_size);

  const std::uint64_t t0 = scibench::now_ns();
  if (functional_) {
    const ExecutorStats before = executor_stats();
    execute_ndrange(kernel, range, device());
    accumulate_dispatch(dispatch_stats_, before, executor_stats());
  }
  const std::uint64_t t1 = scibench::now_ns();

  KernelLaunchStats stats{kernel.name(), range, profile,
                          kernels_since_sync_++};
  if (record_launches_) launches_.push_back(stats);
  const TimingModel& model = device().model();
  const double dt = model.kernel_seconds(stats);
  const double watts = model.kernel_power_watts(stats);

  g_q_kernels.add(1);
  if (obs::timed_metrics_enabled()) g_q_kernel_host_ns.record(t1 - t0);
  if (obs::tracing_enabled()) {
    obs::emit_complete_arg(kernel.name().c_str(), "queue:kernel", t0, t1 - t0,
                           "groups",
                           static_cast<double>(range.num_groups()));
  }

  Event e;
  e.kind = CommandKind::kKernel;
  e.label = kernel.name();
  e.modeled_start_s = now_s_;
  e.modeled_end_s = now_s_ + dt;
  e.host_ns = t1 - t0;
  e.energy_j = watts * dt;
  return push(e);
}

Event Queue::write_bytes(Buffer& dst, const void* src, std::size_t bytes) {
  require(bytes <= dst.bytes(), Status::kInvalidBufferSize,
          "write exceeds buffer size");
  kernels_since_sync_ = 0;  // blocking transfers synchronise the stream
  const std::uint64_t t0 = scibench::now_ns();
  std::memcpy(dst.data(), src, bytes);
  check::on_host_write(dst.data(), 0, bytes);  // transfers initialize
  const std::uint64_t t1 = scibench::now_ns();

  g_q_transfers.add(1);
  g_q_bytes_written.add(static_cast<std::int64_t>(bytes));
  if (obs::timed_metrics_enabled()) g_q_transfer_host_ns.record(t1 - t0);

  Event e;
  e.kind = CommandKind::kWrite;
  e.label = transfer_label("write", dst.name(), bytes);
  e.modeled_start_s = now_s_;
  e.modeled_end_s =
      now_s_ + device().model().transfer_seconds(bytes,
                                                 TransferDir::kHostToDevice);
  e.host_ns = t1 - t0;
  if (obs::tracing_enabled()) {
    obs::emit_complete_arg(e.label.c_str(), "queue:transfer", t0, t1 - t0,
                           "bytes", static_cast<double>(bytes));
  }
  return push(e);
}

Event Queue::read_bytes(const Buffer& src, void* dst, std::size_t bytes) {
  require(bytes <= src.bytes(), Status::kInvalidBufferSize,
          "read exceeds buffer size");
  kernels_since_sync_ = 0;  // blocking transfers synchronise the stream
  const std::uint64_t t0 = scibench::now_ns();
  std::memcpy(dst, src.data(), bytes);
  const std::uint64_t t1 = scibench::now_ns();

  g_q_transfers.add(1);
  g_q_bytes_read.add(static_cast<std::int64_t>(bytes));
  if (obs::timed_metrics_enabled()) g_q_transfer_host_ns.record(t1 - t0);

  Event e;
  e.kind = CommandKind::kRead;
  e.label = transfer_label("read", src.name(), bytes);
  e.modeled_start_s = now_s_;
  e.modeled_end_s =
      now_s_ + device().model().transfer_seconds(bytes,
                                                 TransferDir::kDeviceToHost);
  e.host_ns = t1 - t0;
  if (obs::tracing_enabled()) {
    obs::emit_complete_arg(e.label.c_str(), "queue:transfer", t0, t1 - t0,
                           "bytes", static_cast<double>(bytes));
  }
  return push(e);
}

Event Queue::enqueue_copy(const Buffer& src, Buffer& dst) {
  require(src.bytes() <= dst.bytes(), Status::kInvalidBufferSize,
          "copy exceeds destination buffer");
  if (functional_) {
    std::memcpy(dst.data(), src.data(), src.bytes());
    check::on_host_write(dst.data(), 0, src.bytes());
  }
  return push_device_side_op(
      transfer_label("copy", dst.name(), src.bytes()),
      2 * src.bytes());  // read + write
}

Event Queue::push_device_side_op(std::string label, std::size_t bytes) {
  // Device-side moves run at global-memory bandwidth, not over the host
  // interconnect; model them as a streaming launch of the right size.
  WorkloadProfile p;
  p.bytes_read = static_cast<double>(bytes) / 2;
  p.bytes_written = static_cast<double>(bytes) / 2;
  p.working_set_bytes = static_cast<double>(bytes);
  p.pattern = AccessPattern::kStreaming;
  KernelLaunchStats stats{label, NDRange(std::max<std::size_t>(
                                     1, bytes / sizeof(float))),
                          p, kernels_since_sync_++};
  const double dt = device().model().kernel_seconds(stats);
  Event e;
  e.kind = CommandKind::kKernel;
  e.label = std::move(label);
  e.modeled_start_s = now_s_;
  e.modeled_end_s = now_s_ + dt;
  e.energy_j = device().model().kernel_power_watts(stats) * dt;
  return push(e);
}

Event& Queue::push(Event e) {
  now_s_ = e.modeled_end_s;
  events_.push_back(std::move(e));
  Event& back = events_.back();
  // Mirror every command onto this queue's modeled-device lane (pid 2).
  // Device timestamps are the virtual timeline in ns, deliberately not
  // rebased against the host clock — the viewer shows them as a separate
  // process, so the timebases never visually overlap.
  if (obs::tracing_enabled()) {
    obs::emit_complete_on(
        obs::kDevicePid, obs_lane(), back.label.c_str(),
        back.kind == CommandKind::kKernel ? "device:kernel"
                                          : "device:transfer",
        static_cast<std::uint64_t>(back.modeled_start_s * 1e9),
        static_cast<std::uint64_t>(back.modeled_seconds() * 1e9), "energy_j",
        back.energy_j);
  }
  return back;
}

double Queue::modeled_kernel_seconds() const noexcept {
  double s = 0.0;
  for (const Event& e : events_) {
    if (e.kind == CommandKind::kKernel) s += e.modeled_seconds();
  }
  return s;
}

double Queue::modeled_transfer_seconds() const noexcept {
  double s = 0.0;
  for (const Event& e : events_) {
    if (e.kind != CommandKind::kKernel) s += e.modeled_seconds();
  }
  return s;
}

double Queue::modeled_kernel_energy_j() const noexcept {
  double j = 0.0;
  for (const Event& e : events_) {
    if (e.kind == CommandKind::kKernel) j += e.energy_j;
  }
  return j;
}

}  // namespace eod::xcl
