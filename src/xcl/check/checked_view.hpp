// CheckedView / CheckedRef: the accessor types behind Buffer::access<T>()
// (DESIGN.md §10).  A CheckedView is a span-like typed window over a
// buffer's storage; indexing yields a CheckedRef proxy that routes every
// load and store through the active CheckSession's shadow memory.  When no
// session is active the shadow pointer is null and the proxy degrades to a
// raw indexed access — one predictable branch, no allocation — so dwarfs
// use access<T>() unconditionally and only pay for checking under
// --dispatch=checked.
//
// Out-of-bounds accesses under a session are *suppressed*, not performed:
// loads return a value-initialized T, stores are dropped.  Checking is
// therefore crash-free even for wild indices.
#pragma once

#include <cstddef>
#include <type_traits>

namespace eod::xcl::check {

struct BufferShadow;

/// Routes one byte-range access through the active session (defined in
/// session.cpp).  Returns true when the access may be performed; false
/// when it was out of bounds (reported and suppressed).
bool checked_access(BufferShadow& shadow, std::size_t offset,
                    std::size_t bytes, bool is_write);

/// Proxy for one element access.  Holds (base, index) rather than a raw
/// element pointer so an out-of-bounds index never even forms an invalid
/// pointer before the bounds check runs.
template <typename T>
class CheckedRef {
 public:
  using Value = std::remove_const_t<T>;
  static_assert(std::is_trivially_copyable_v<Value>,
                "checked accessors require trivially copyable elements");

  CheckedRef(T* base, std::size_t index, BufferShadow* shadow) noexcept
      : base_(base), index_(index), shadow_(shadow) {}

  // NOLINTNEXTLINE(google-explicit-constructor): proxy reads like T.
  operator Value() const { return load(); }

  CheckedRef& operator=(const Value& v)
    requires(!std::is_const_v<T>)
  {
    store(v);
    return *this;
  }
  CheckedRef& operator=(const CheckedRef& other)
    requires(!std::is_const_v<T>)
  {
    store(other.load());
    return *this;
  }

  CheckedRef& operator+=(const Value& v)
    requires(!std::is_const_v<T>)
  {
    store(load() + v);
    return *this;
  }
  CheckedRef& operator-=(const Value& v)
    requires(!std::is_const_v<T>)
  {
    store(load() - v);
    return *this;
  }
  CheckedRef& operator*=(const Value& v)
    requires(!std::is_const_v<T>)
  {
    store(load() * v);
    return *this;
  }
  CheckedRef& operator/=(const Value& v)
    requires(!std::is_const_v<T>)
  {
    store(load() / v);
    return *this;
  }

  [[nodiscard]] Value load() const {
    if (shadow_ != nullptr &&
        !checked_access(*shadow_, index_ * sizeof(Value), sizeof(Value),
                        /*is_write=*/false)) {
      return Value{};
    }
    return base_[index_];
  }

  void store(const Value& v) const
    requires(!std::is_const_v<T>)
  {
    if (shadow_ != nullptr &&
        !checked_access(*shadow_, index_ * sizeof(Value), sizeof(Value),
                        /*is_write=*/true)) {
      return;
    }
    base_[index_] = v;
  }

 private:
  T* base_;
  std::size_t index_;
  BufferShadow* shadow_;
};

/// Span-like checked window.  Copyable and cheap to capture by value in
/// kernel lambdas (pointer + size + shadow pointer).
template <typename T>
class CheckedView {
 public:
  CheckedView() = default;
  CheckedView(T* data, std::size_t size, BufferShadow* shadow) noexcept
      : data_(data), size_(size), shadow_(shadow) {}

  /// Views lose their const qualifier freely in the read-only direction.
  /// A template so it never counts as this class's copy constructor.
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::span.
  template <typename U>
    requires(std::is_const_v<T> && std::is_same_v<U, std::remove_const_t<T>>)
  CheckedView(const CheckedView<U>& other) noexcept
      : data_(other.data()), size_(other.size()), shadow_(other.shadow()) {}

  [[nodiscard]] CheckedRef<T> operator[](std::size_t i) const noexcept {
    return {data_, i, shadow_};
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// True when accesses route through a session's shadow memory.
  [[nodiscard]] bool checked() const noexcept { return shadow_ != nullptr; }
  [[nodiscard]] BufferShadow* shadow() const noexcept { return shadow_; }

  /// Unchecked escape hatch for span bodies: the span tier never runs under
  /// a session (the checker forces the per-item path), so span bodies may
  /// loop over the raw pointer at full speed.
  [[nodiscard]] T* data() const noexcept { return data_; }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  BufferShadow* shadow_ = nullptr;
};

}  // namespace eod::xcl::check
