#include "xcl/check/checked_exec.hpp"

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "xcl/check/session.hpp"
#include "xcl/fiber.hpp"
#include "xcl/work_item.hpp"

namespace eod::xcl::check {

namespace {

// Long-lived per-thread scratch, mirroring the reference executor's
// WorkerScratch: the arena storage and fiber stacks survive across groups
// and launches.  The checked tier runs on the launching thread only, so in
// practice there is exactly one of these.
struct CheckedScratch {
  LocalArena arena{0};
  std::vector<std::unique_ptr<Fiber>> fibers;
};

CheckedScratch& checked_scratch() {
  thread_local CheckedScratch scratch;
  return scratch;
}

struct GroupCoords {
  std::array<std::size_t, 3> group_id;
  std::array<std::size_t, 3> global_size;
  std::array<std::size_t, 3> local_size;
};

GroupCoords decode_group(const NDRange& range, std::size_t flat) {
  GroupCoords g;
  const std::size_t gx = range.groups(0);
  const std::size_t gy = range.groups(1);
  g.group_id = {flat % gx, (flat / gx) % gy, flat / (gx * gy)};
  g.global_size = {range.global(0), range.global(1), range.global(2)};
  g.local_size = {range.local(0), range.local(1), range.local(2)};
  return g;
}

// Builds the WorkItem for flat in-group id `flat` (x fastest, matching the
// reference loop/fiber paths) and runs the per-item body under the
// session's item context.
void run_item(const Kernel& kernel, const GroupCoords& g, std::size_t flat,
              LocalArena& arena, const std::function<void()>* barrier_hook,
              CheckSession& session) {
  const auto [lx, ly, lz] = g.local_size;
  const std::array<std::size_t, 3> local_id{flat % lx, (flat / lx) % ly,
                                            flat / (lx * ly)};
  const std::array<std::size_t, 3> global_id{
      g.group_id[0] * lx + local_id[0], g.group_id[1] * ly + local_id[1],
      g.group_id[2] * lz + local_id[2]};
  session.begin_item(static_cast<std::uint32_t>(flat));
  WorkItem item(global_id, local_id, g.group_id, g.global_size,
                g.local_size, &arena, barrier_hook);
  kernel.body()(item);
  session.end_item();
}

// Round-robin fiber scheduling that — unlike FiberPool::run_group — never
// throws on divergent barrier counts: every unfinished fiber keeps being
// resumed until it runs off the end of its body, and the count mismatch is
// reported by CheckSession::end_group() as a classified finding.
void run_group_fibers(const Kernel& kernel, const GroupCoords& g,
                      std::size_t items, CheckedScratch& scratch,
                      const std::function<void()>* barrier_hook,
                      CheckSession& session) {
  while (scratch.fibers.size() < items) {
    scratch.fibers.push_back(std::make_unique<Fiber>([] {}));
  }
  for (std::size_t i = 0; i < items; ++i) {
    scratch.fibers[i]->reset([&kernel, &g, i, &scratch, barrier_hook,
                              &session] {
      run_item(kernel, g, i, scratch.arena, barrier_hook, session);
    });
  }
  std::size_t done = 0;
  while (done < items) {
    for (std::size_t i = 0; i < items; ++i) {
      Fiber& f = *scratch.fibers[i];
      if (f.done()) continue;
      f.resume();
      if (f.done()) ++done;
    }
  }
}

}  // namespace

void execute_checked(const Kernel& kernel, const NDRange& range,
                     const Device& device, CheckSession& session) {
  session.begin_launch(kernel);
  CheckedScratch& scratch = checked_scratch();
  scratch.arena.ensure_capacity(device.info().local_mem_bytes);

  const std::size_t groups = range.num_groups();
  const std::size_t items = range.group_items();
  const bool use_fibers = kernel.barriers() && items > 1;

  // One hook for every item: records the arrival (epoch bump + misuse
  // classification) and, on the fiber path, suspends the item.  The item
  // context is saved around the yield because the scheduler resumes a
  // different item next.
  const std::function<void()> barrier_hook = [&session, use_fibers] {
    session.on_barrier();
    if (use_fibers) {
      const std::uint32_t current = session.current_item();
      Fiber::yield_current();
      session.begin_item(current);
    }
  };

  for (std::size_t flat = 0; flat < groups; ++flat) {
    const GroupCoords g = decode_group(range, flat);
    session.begin_group(flat, items);
    scratch.arena.reset();
    if (use_fibers) {
      run_group_fibers(kernel, g, items, scratch, &barrier_hook, session);
    } else {
      for (std::size_t i = 0; i < items; ++i) {
        run_item(kernel, g, i, scratch.arena, &barrier_hook, session);
      }
    }
    session.end_group();
  }
}

}  // namespace eod::xcl::check
