// CheckSession: the shadow-memory state machine behind the `checked`
// dispatch tier (DESIGN.md §10).
//
// While a session is active every Buffer::access<T>() view routes kernel
// loads/stores through per-byte shadow memory recording the init state and
// the last writer/reader work-item with its barrier epoch.  The checked
// executor (checked_exec.hpp) feeds the session the execution context —
// which launch, group, item and epoch is currently running — and the
// session classifies defects into a CheckReport:
//
//   * intra-group race: two different work-items of the same group touch a
//     byte in the same barrier interval and at least one access is a write;
//   * out-of-bounds: an access outside the owning buffer's byte range
//     (suppressed rather than performed, so checking is crash-free);
//   * uninit read: a kernel reads a byte never written by a kernel, a
//     transfer, a fill or a host-side view since its allocation;
//   * barrier divergence: live items of one group retire different barrier
//     counts, or barrier() is reached in a kernel not marked uses_barriers();
//   * span barrier: a kernel that registered a span body (asserting the
//     barrier-free span-tier precondition) calls barrier() after all.
//
// Exactly one session may be active at a time, process-wide.  The checked
// tier executes groups serially on the launching thread, so the session
// needs no internal synchronization; the only atomics are the active-session
// pointer that the Buffer/Queue fast paths poll.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "xcl/check/report.hpp"

namespace eod::xcl {
class Kernel;
}

namespace eod::xcl::check {

/// Last-accessor stamp for one shadow byte.  launch==0 means "never
/// accessed from a kernel" (launch ids start at 1).
struct AccessStamp {
  std::uint32_t launch = 0;
  std::uint32_t group = 0;
  std::uint32_t item = 0;
  std::uint32_t epoch = 0;
};

/// Per-byte shadow cell: last writer, last reader, and whether the byte has
/// ever been initialized.  Keeping only the *last* reader is the classic
/// shadow-memory approximation: a write conflicting with any one of several
/// same-epoch readers is still caught unless the writer itself happens to be
/// the retained reader.
struct ShadowByte {
  AccessStamp write;
  AccessStamp read;
  std::uint8_t init = 0;
};

/// Shadow state of one Buffer, keyed by its storage address (stable across
/// Buffer moves — vector storage moves with the object).
struct BufferShadow {
  std::string label;        ///< accessor-supplied name for reports
  std::size_t bytes = 0;
  /// Allocated while the session was active: uninit reads are only
  /// meaningful for buffers whose whole lifetime the checker observed;
  /// pre-existing buffers are conservatively assumed initialized.
  bool tracked_from_birth = false;
  std::vector<ShadowByte> state;  ///< one cell per buffer byte
};

class CheckSession {
 public:
  /// Registers as the process-wide active session; throws if one is already
  /// active.  Forces DispatchMode::kChecked for its lifetime (restored on
  /// destruction) so auto/span tier selection cannot bypass the checker.
  CheckSession();
  ~CheckSession();

  CheckSession(const CheckSession&) = delete;
  CheckSession& operator=(const CheckSession&) = delete;

  /// The active session, or null.  Acquire/release ordering pairs with
  /// registration so a non-null result is a fully constructed session.
  [[nodiscard]] static CheckSession* active() noexcept;

  // ---- buffer lifecycle (called via the inline hooks below) ----
  void track_alloc(const void* base, std::size_t bytes);
  void forget_buffer(const void* base) noexcept;
  /// Host-side initialization: transfers, fills and mutable view<T>()
  /// escapes mark the range initialized without touching accessor stamps.
  void mark_host_write(const void* base, std::size_t offset,
                       std::size_t bytes);

  /// Shadow for a buffer, created on demand.  The first non-empty label
  /// sticks (a buffer accessed as "out" in one kernel and anonymously in
  /// another reports as "out").
  BufferShadow* shadow_for(const void* base, std::size_t bytes,
                           std::string_view label);

  // ---- execution context (driven by checked_exec) ----
  void begin_launch(const Kernel& kernel);
  void begin_group(std::uint64_t group, std::size_t items);
  void begin_item(std::uint32_t item);
  void end_item();
  /// Flat in-group id of the item currently executing (the checked fiber
  /// scheduler saves it around a yield and restores via begin_item).
  [[nodiscard]] std::uint32_t current_item() const noexcept { return item_; }
  /// Records a barrier() arrival for the current item: bumps its epoch and
  /// classifies misuse (span-registered or unmarked kernels).
  void on_barrier();
  /// Closes the group: live items that retired different barrier counts are
  /// a divergence finding.
  void end_group();

  /// Byte-range access check from a CheckedRef.  Returns true when the
  /// access is in bounds and may be performed; false means the access was
  /// reported (OOB) and must be suppressed by the caller.
  bool note_access(BufferShadow& shadow, std::size_t offset,
                   std::size_t bytes, bool is_write);

  [[nodiscard]] const CheckReport& report() const noexcept { return report_; }
  [[nodiscard]] CheckReport take_report() { return std::move(report_); }

 private:
  void record(FindingKind kind, const BufferShadow* shadow,
              std::size_t offset, std::size_t bytes, std::uint64_t item_b,
              std::string detail);

  std::unordered_map<const void*, std::unique_ptr<BufferShadow>> shadows_;
  CheckReport report_;

  // Current-launch context.  Launch ids start at 1 so stamp.launch == 0
  // always reads as "never".
  std::uint32_t launch_ = 0;
  std::string kernel_;
  bool kernel_has_span_ = false;
  bool kernel_uses_barriers_ = false;
  std::uint64_t group_ = 0;
  std::uint32_t item_ = 0;
  bool in_item_ = false;
  /// Per-item barrier arrival counts of the current group; an item's count
  /// is its current epoch.
  std::vector<std::uint32_t> barrier_counts_;

  std::uint8_t saved_dispatch_ = 0;  ///< DispatchMode restored by the dtor
};

namespace detail {
extern std::atomic<CheckSession*> g_active_session;
}

/// Fast hooks for the Buffer/Queue hot paths: one relaxed-ish atomic load
/// when no session is active.
inline CheckSession* active_session() noexcept {
  return detail::g_active_session.load(std::memory_order_acquire);
}

inline void on_buffer_alloc(const void* base, std::size_t bytes) {
  if (CheckSession* s = active_session()) s->track_alloc(base, bytes);
}

inline void on_buffer_release(const void* base) noexcept {
  if (CheckSession* s = active_session()) s->forget_buffer(base);
}

inline void on_host_write(const void* base, std::size_t offset,
                          std::size_t bytes) {
  if (CheckSession* s = active_session()) {
    s->mark_host_write(base, offset, bytes);
  }
}

}  // namespace eod::xcl::check
