// CheckReport: the findings container for the checked dispatch tier
// (DESIGN.md §10).  Every defect the shadow-memory checker detects is
// folded into a deduplicated, severity-ranked report that renders both as
// human-readable text and as machine-readable TSV (one row per distinct
// finding) so CI gates can diff it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace eod::xcl::check {

/// The defect classes the checker distinguishes.  Classification — not
/// just detection — is part of the contract: a race must never be reported
/// as an OOB and vice versa (check_tier_test pins this per seeded defect).
enum class FindingKind : std::uint8_t {
  kOutOfBounds,        ///< access beyond the owning buffer's byte range
  kIntraGroupRace,     ///< conflicting same-epoch accesses by two items
  kBarrierDivergence,  ///< live items of one group disagree on barrier count
  kUninitRead,         ///< kernel read of a never-written byte
  kSpanBarrier,        ///< span-registered barrier-free kernel calls barrier()
};

/// Two-level ranking.  Errors are memory-safety / synchronization defects
/// that can corrupt results on a real device; warnings are portability
/// hazards that this functional runtime happens to execute deterministically
/// (reads of zero-filled storage, a span body whose per-item twin still
/// calls barrier()) but a conforming OpenCL implementation need not.
enum class Severity : std::uint8_t { kError, kWarning };

[[nodiscard]] const char* to_string(FindingKind kind) noexcept;
[[nodiscard]] const char* to_string(Severity severity) noexcept;
[[nodiscard]] Severity severity_of(FindingKind kind) noexcept;

/// One deduplicated defect.  Location fields describe the *first* occurrence
/// (the checker runs groups serially, so "first" is deterministic);
/// `occurrences` counts every byte-level hit folded into this finding.
struct Finding {
  FindingKind kind = FindingKind::kOutOfBounds;
  Severity severity = Severity::kError;
  std::string kernel;           ///< launching kernel's name
  std::string buffer;           ///< owning buffer label; empty for barrier findings
  std::size_t byte_offset = 0;  ///< first offending byte offset in the buffer
  std::size_t byte_count = 0;   ///< bytes touched by the first occurrence
  std::uint64_t group = 0;      ///< flat work-group id of the first occurrence
  std::uint64_t item_a = 0;     ///< flat in-group id of the accessing item
  std::uint64_t item_b = 0;     ///< second party (races/divergence); ==item_a otherwise
  std::uint32_t epoch = 0;      ///< barrier epoch of the first occurrence
  std::uint64_t occurrences = 1;
  std::string detail;           ///< one-line human-readable description
};

/// Deduplicated, severity-ranked findings of one checked run.  Findings are
/// merged by (kind, kernel, buffer): repeated byte-level hits of the same
/// defect bump `occurrences` instead of flooding the report.
class CheckReport {
 public:
  /// Records one occurrence; merges into an existing finding when the
  /// (kind, kernel, buffer) key was seen before.
  void add(Finding finding);

  /// Findings sorted by severity (errors first), then kind, kernel, buffer.
  [[nodiscard]] const std::vector<Finding>& findings() const;

  [[nodiscard]] bool clean() const noexcept { return findings_.empty(); }
  [[nodiscard]] std::size_t error_count() const noexcept;
  [[nodiscard]] std::size_t warning_count() const noexcept;
  [[nodiscard]] std::uint64_t total_occurrences() const noexcept;

  /// Human-readable rendering, one block per finding plus a summary line.
  [[nodiscard]] std::string to_text() const;
  /// Machine-readable rendering: a header row, then one TSV row per
  /// finding (stable column order, no embedded tabs).
  [[nodiscard]] std::string to_tsv() const;

 private:
  void rank() const;

  mutable std::vector<Finding> findings_;
  mutable bool ranked_ = true;
};

}  // namespace eod::xcl::check
