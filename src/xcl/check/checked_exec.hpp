// The checked dispatch tier's execution engine (DESIGN.md §10): runs an
// NDRange serially on the calling thread — groups in flat order, items
// interleaved by a private fiber scheduler when the kernel uses barriers —
// while feeding the active CheckSession the (launch, group, item, epoch)
// context every shadow-memory access is judged against.
//
// Serial execution is the point, not a limitation: with one thread the
// shadow state needs no synchronization and the *first* occurrence of every
// defect is deterministic, so reports are reproducible run to run.  Unlike
// the reference fiber path, divergent barrier counts do not throw here:
// stragglers are resumed to completion and the divergence is reported as a
// classified finding.
#pragma once

#include "xcl/device.hpp"
#include "xcl/kernel.hpp"
#include "xcl/ndrange.hpp"

namespace eod::xcl::check {

class CheckSession;

/// Executes `kernel` over `range` (local sizes resolved) under `session`.
/// Exceptions thrown by the kernel body propagate, as on the reference
/// path; checker findings never throw.
void execute_checked(const Kernel& kernel, const NDRange& range,
                     const Device& device, CheckSession& session);

}  // namespace eod::xcl::check
