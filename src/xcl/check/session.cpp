#include "xcl/check/session.hpp"

#include <algorithm>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "xcl/error.hpp"
#include "xcl/executor.hpp"
#include "xcl/kernel.hpp"

namespace eod::xcl::check {

namespace {

// Checker instruments (DESIGN.md §11).
obs::Counter& g_sessions = obs::counter("check.sessions");
obs::Counter& g_launches_checked = obs::counter("check.launches_checked");
obs::Counter& g_findings = obs::counter("check.findings");

}  // namespace

namespace detail {
std::atomic<CheckSession*> g_active_session{nullptr};
}

CheckSession::CheckSession() {
  CheckSession* expected = nullptr;
  require(detail::g_active_session.compare_exchange_strong(
              expected, this, std::memory_order_acq_rel,
              std::memory_order_acquire),
          Status::kInvalidOperation,
          "a CheckSession is already active (one checker at a time)");
  // Pin the checked tier for the session's lifetime: auto/span selection
  // must not route launches around the shadow-memory instrumentation.
  saved_dispatch_ = static_cast<std::uint8_t>(dispatch_mode());
  set_dispatch_mode(DispatchMode::kChecked);
  g_sessions.add(1);
  obs::emit_instant("check:session-begin", "check");
}

CheckSession::~CheckSession() {
  obs::emit_instant("check:session-end", "check");
  set_dispatch_mode(static_cast<DispatchMode>(saved_dispatch_));
  detail::g_active_session.store(nullptr, std::memory_order_release);
}

CheckSession* CheckSession::active() noexcept { return active_session(); }

void CheckSession::track_alloc(const void* base, std::size_t bytes) {
  // Pointer reuse after a free is common (allocator recycling); the fresh
  // allocation replaces any stale entry outright.
  auto shadow = std::make_unique<BufferShadow>();
  shadow->bytes = bytes;
  shadow->tracked_from_birth = true;
  shadow->state.assign(bytes, ShadowByte{});
  shadows_[base] = std::move(shadow);
}

void CheckSession::forget_buffer(const void* base) noexcept {
  shadows_.erase(base);
}

void CheckSession::mark_host_write(const void* base, std::size_t offset,
                                   std::size_t bytes) {
  auto it = shadows_.find(base);
  if (it == shadows_.end()) return;  // pre-session buffer: assumed init
  BufferShadow& sh = *it->second;
  const std::size_t end = std::min(sh.bytes, offset + bytes);
  for (std::size_t i = std::min(offset, end); i < end; ++i) {
    sh.state[i].init = 1;
  }
}

BufferShadow* CheckSession::shadow_for(const void* base, std::size_t bytes,
                                       std::string_view label) {
  auto it = shadows_.find(base);
  if (it == shadows_.end()) {
    // The buffer predates the session: bounds and race checking still
    // apply, but its contents are conservatively assumed initialized.
    auto shadow = std::make_unique<BufferShadow>();
    shadow->bytes = bytes;
    shadow->tracked_from_birth = false;
    shadow->state.assign(bytes, ShadowByte{});
    it = shadows_.emplace(base, std::move(shadow)).first;
  }
  BufferShadow& sh = *it->second;
  if (sh.label.empty() && !label.empty()) sh.label = label;
  return &sh;
}

void CheckSession::begin_launch(const Kernel& kernel) {
  ++launch_;
  g_launches_checked.add(1);
  kernel_ = kernel.name();
  kernel_has_span_ = kernel.has_span();
  kernel_uses_barriers_ = kernel.barriers();
}

void CheckSession::begin_group(std::uint64_t group, std::size_t items) {
  group_ = group;
  barrier_counts_.assign(items, 0);
}

void CheckSession::begin_item(std::uint32_t item) {
  item_ = item;
  in_item_ = true;
}

void CheckSession::end_item() { in_item_ = false; }

void CheckSession::on_barrier() {
  if (!kernel_uses_barriers_) {
    if (kernel_has_span_) {
      // The span body's registration asserts the kernel is barrier-free
      // (DESIGN.md §9); its per-item twin calling barrier() breaks that
      // contract — a reported defect here, not the UB it would be on the
      // span tier.
      record(FindingKind::kSpanBarrier, nullptr, 0, 0, item_,
             "span-registered kernel calls barrier(): the span tier's "
             "barrier-free precondition is violated");
    } else {
      record(FindingKind::kBarrierDivergence, nullptr, 0, 0, item_,
             "barrier() reached in a kernel not marked uses_barriers()");
    }
  }
  if (item_ < barrier_counts_.size()) ++barrier_counts_[item_];
}

void CheckSession::end_group() {
  // Divergence is judged only for kernels that declared barriers: an
  // unmarked kernel reaching barrier() is already a misuse finding
  // (on_barrier), and double-reporting it as divergence would misclassify.
  if (!kernel_uses_barriers_ || barrier_counts_.empty()) return;
  const auto [lo, hi] =
      std::minmax_element(barrier_counts_.begin(), barrier_counts_.end());
  if (*lo == *hi) return;
  const auto item_lo =
      static_cast<std::uint64_t>(lo - barrier_counts_.begin());
  const auto item_hi =
      static_cast<std::uint64_t>(hi - barrier_counts_.begin());
  std::ostringstream detail;
  detail << "work-items of one group retired different barrier counts: item "
         << item_lo << " reached " << *lo << " barrier(s), item " << item_hi
         << " reached " << *hi;
  const std::uint32_t saved_item = item_;
  item_ = static_cast<std::uint32_t>(item_lo);
  record(FindingKind::kBarrierDivergence, nullptr, 0, 0, item_hi,
         detail.str());
  item_ = saved_item;
}

bool CheckSession::note_access(BufferShadow& shadow, std::size_t offset,
                               std::size_t bytes, bool is_write) {
  if (offset > shadow.bytes || bytes > shadow.bytes - offset) {
    std::ostringstream detail;
    detail << (is_write ? "write" : "read") << " of " << bytes
           << " byte(s) at offset " << offset << " exceeds buffer size "
           << shadow.bytes;
    record(FindingKind::kOutOfBounds, &shadow, offset, bytes, item_,
           detail.str());
    return false;  // the access is suppressed, keeping checking crash-free
  }
  if (!in_item_) {
    // Host-side accessor use between launches (setup/teardown code):
    // writes initialize, nothing races.
    if (is_write) {
      for (std::size_t i = offset; i < offset + bytes; ++i) {
        shadow.state[i].init = 1;
      }
    }
    return true;
  }

  const std::uint32_t epoch =
      item_ < barrier_counts_.size() ? barrier_counts_[item_] : 0;
  bool race_reported = false;
  bool uninit_reported = false;
  for (std::size_t i = offset; i < offset + bytes; ++i) {
    ShadowByte& b = shadow.state[i];
    // A conflict needs: same launch, same group, *different* item, same
    // barrier epoch, and at least one write.  Cross-launch and cross-group
    // reuse is ordered by the in-order queue / group independence and is
    // not a defect.
    const auto conflicts = [&](const AccessStamp& s) {
      return s.launch == launch_ &&
             s.group == static_cast<std::uint32_t>(group_) &&
             s.item != item_ && s.epoch == epoch;
    };
    if (!race_reported) {
      const AccessStamp* other = nullptr;
      const char* other_did = nullptr;
      if (conflicts(b.write)) {
        other = &b.write;
        other_did = "wrote";
      } else if (is_write && conflicts(b.read)) {
        other = &b.read;
        other_did = "read";
      }
      if (other != nullptr) {
        std::ostringstream detail;
        detail << "work-item " << item_ << (is_write ? " writes" : " reads")
               << " byte " << i << " that work-item " << other->item << ' '
               << other_did << " in the same barrier interval (epoch "
               << epoch << ")";
        record(FindingKind::kIntraGroupRace, &shadow, i, bytes, other->item,
               detail.str());
        race_reported = true;
      }
    }
    if (!is_write && !uninit_reported && shadow.tracked_from_birth &&
        b.init == 0) {
      std::ostringstream detail;
      detail << "read of never-initialized byte " << i
             << " (no prior kernel write, transfer, fill or host view)";
      record(FindingKind::kUninitRead, &shadow, i, bytes, item_,
             detail.str());
      uninit_reported = true;
    }
    if (is_write) {
      b.write = {launch_, static_cast<std::uint32_t>(group_), item_, epoch};
      b.init = 1;
    } else {
      b.read = {launch_, static_cast<std::uint32_t>(group_), item_, epoch};
    }
  }
  return true;
}

bool checked_access(BufferShadow& shadow, std::size_t offset,
                    std::size_t bytes, bool is_write) {
  CheckSession* s = active_session();
  if (s == nullptr) return true;  // stale view after session end: unchecked
  return s->note_access(shadow, offset, bytes, is_write);
}

void CheckSession::record(FindingKind kind, const BufferShadow* shadow,
                          std::size_t offset, std::size_t bytes,
                          std::uint64_t item_b, std::string detail) {
  Finding f;
  f.kind = kind;
  f.kernel = kernel_;
  if (shadow != nullptr) {
    f.buffer = shadow->label.empty() ? "<unnamed>" : shadow->label;
  }
  f.byte_offset = offset;
  f.byte_count = bytes;
  f.group = group_;
  f.item_a = item_;
  f.item_b = item_b;
  f.epoch = item_ < barrier_counts_.size() ? barrier_counts_[item_] : 0;
  f.detail = std::move(detail);
  g_findings.add(1);
  obs::emit_instant("check:finding", "check");
  report_.add(std::move(f));
}

}  // namespace eod::xcl::check
