#include "xcl/check/report.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace eod::xcl::check {

const char* to_string(FindingKind kind) noexcept {
  switch (kind) {
    case FindingKind::kOutOfBounds:
      return "out-of-bounds";
    case FindingKind::kIntraGroupRace:
      return "intra-group-race";
    case FindingKind::kBarrierDivergence:
      return "barrier-divergence";
    case FindingKind::kUninitRead:
      return "uninit-read";
    case FindingKind::kSpanBarrier:
      return "span-barrier";
  }
  return "unknown";
}

const char* to_string(Severity severity) noexcept {
  return severity == Severity::kError ? "error" : "warning";
}

Severity severity_of(FindingKind kind) noexcept {
  switch (kind) {
    case FindingKind::kOutOfBounds:
    case FindingKind::kIntraGroupRace:
    case FindingKind::kBarrierDivergence:
      return Severity::kError;
    case FindingKind::kUninitRead:
    case FindingKind::kSpanBarrier:
      break;
  }
  return Severity::kWarning;
}

void CheckReport::add(Finding finding) {
  finding.severity = severity_of(finding.kind);
  for (Finding& f : findings_) {
    if (f.kind == finding.kind && f.kernel == finding.kernel &&
        f.buffer == finding.buffer) {
      f.occurrences += finding.occurrences;
      return;  // keep the first occurrence's location fields
    }
  }
  findings_.push_back(std::move(finding));
  ranked_ = false;
}

void CheckReport::rank() const {
  if (ranked_) return;
  std::stable_sort(findings_.begin(), findings_.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.severity, a.kind, a.kernel, a.buffer) <
                            std::tie(b.severity, b.kind, b.kernel, b.buffer);
                   });
  ranked_ = true;
}

const std::vector<Finding>& CheckReport::findings() const {
  rank();
  return findings_;
}

std::size_t CheckReport::error_count() const noexcept {
  std::size_t n = 0;
  for (const Finding& f : findings_) {
    if (f.severity == Severity::kError) ++n;
  }
  return n;
}

std::size_t CheckReport::warning_count() const noexcept {
  return findings_.size() - error_count();
}

std::uint64_t CheckReport::total_occurrences() const noexcept {
  std::uint64_t n = 0;
  for (const Finding& f : findings_) n += f.occurrences;
  return n;
}

std::string CheckReport::to_text() const {
  rank();
  std::ostringstream os;
  if (findings_.empty()) {
    os << "check: clean (no findings)\n";
    return os.str();
  }
  for (const Finding& f : findings_) {
    os << to_string(f.severity) << ": " << to_string(f.kind) << " in kernel '"
       << f.kernel << "'";
    if (!f.buffer.empty()) {
      os << ", buffer '" << f.buffer << "' bytes [" << f.byte_offset << ", "
         << f.byte_offset + f.byte_count << ")";
    }
    os << "\n    " << f.detail << "\n    group " << f.group << ", item "
       << f.item_a;
    if (f.item_b != f.item_a) os << " vs item " << f.item_b;
    os << ", epoch " << f.epoch << "; " << f.occurrences
       << " occurrence(s)\n";
  }
  os << "check: " << error_count() << " error(s), " << warning_count()
     << " warning(s), " << total_occurrences() << " total occurrence(s)\n";
  return os.str();
}

std::string CheckReport::to_tsv() const {
  rank();
  std::ostringstream os;
  os << "severity\tkind\tkernel\tbuffer\tbyte_offset\tbyte_count\tgroup\t"
        "item_a\titem_b\tepoch\toccurrences\n";
  for (const Finding& f : findings_) {
    os << to_string(f.severity) << '\t' << to_string(f.kind) << '\t'
       << f.kernel << '\t' << f.buffer << '\t' << f.byte_offset << '\t'
       << f.byte_count << '\t' << f.group << '\t' << f.item_a << '\t'
       << f.item_b << '\t' << f.epoch << '\t' << f.occurrences << '\n';
  }
  return os.str();
}

}  // namespace eod::xcl::check
