#include "dwarfs/registry.hpp"

#include <stdexcept>

#include "dwarfs/beff/beff.hpp"
#include "dwarfs/crc/crc.hpp"
#include "dwarfs/csr/csr.hpp"
#include "dwarfs/cwt/cwt.hpp"
#include "dwarfs/dwt/dwt.hpp"
#include "dwarfs/fft/fft.hpp"
#include "dwarfs/gem/gem.hpp"
#include "dwarfs/hmm/hmm.hpp"
#include "dwarfs/kmeans/kmeans.hpp"
#include "dwarfs/lud/lud.hpp"
#include "dwarfs/nqueens/nqueens.hpp"
#include "dwarfs/nw/nw.hpp"
#include "dwarfs/srad/srad.hpp"

namespace eod::dwarfs {

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names = {
      "kmeans", "lud", "csr",     "fft", "dwt", "srad",
      "crc",    "nw",  "gem",     "nqueens", "hmm"};
  return names;
}

const std::vector<std::string>& extension_names() {
  static const std::vector<std::string> names = {"cwt", "beff"};
  return names;
}

std::unique_ptr<Dwarf> create_dwarf(const std::string& name) {
  if (name == "cwt") return std::make_unique<Cwt>();
  if (name == "beff") return std::make_unique<Beff>();
  if (name == "kmeans") return std::make_unique<KMeans>();
  if (name == "lud") return std::make_unique<Lud>();
  if (name == "csr") return std::make_unique<Csr>();
  if (name == "fft") return std::make_unique<Fft>();
  if (name == "dwt") return std::make_unique<Dwt>();
  if (name == "srad") return std::make_unique<Srad>();
  if (name == "crc") return std::make_unique<Crc>();
  if (name == "nw") return std::make_unique<Nw>();
  if (name == "gem") return std::make_unique<Gem>();
  if (name == "nqueens") return std::make_unique<Nqueens>();
  if (name == "hmm") return std::make_unique<Hmm>();
  throw std::invalid_argument("unknown benchmark: " + name);
}

std::vector<std::unique_ptr<Dwarf>> create_all_dwarfs() {
  std::vector<std::unique_ptr<Dwarf>> out;
  for (const std::string& n : benchmark_names()) {
    out.push_back(create_dwarf(n));
  }
  return out;
}

}  // namespace eod::dwarfs
