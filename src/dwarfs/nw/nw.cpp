#include "dwarfs/nw/nw.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "xcl/kernel.hpp"

namespace eod::dwarfs {

namespace {

constexpr std::size_t B = Nw::kBlock;

// BLOSUM62 substitution matrix (24 residue codes), as shipped with Rodinia.
constexpr std::array<std::array<std::int8_t, 24>, 24> kBlosum62 = {{
    {4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0, -2, -1, 0, -4},
    {-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3, -1, 0, -1, -4},
    {-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3, 3, 0, -1, -4},
    {-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3, 4, 1, -1, -4},
    {0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4},
    {-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2, 0, 3, -1, -4},
    {-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1, -4},
    {0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3, -1, -2, -1, -4},
    {-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3, 0, 0, -1, -4},
    {-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3, -3, -3, -1, -4},
    {-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1, -4, -3, -1, -4},
    {-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2, 0, 1, -1, -4},
    {-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1, -3, -1, -1, -4},
    {-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1, -3, -3, -1, -4},
    {-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2, -2, -1, -2, -4},
    {1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2, 0, 0, 0, -4},
    {0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0, -1, -1, 0, -4},
    {-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3, -4, -3, -2, -4},
    {-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1, -3, -2, -1, -4},
    {0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4, -3, -2, -1, -4},
    {-2, -1, 3, 4, -3, 0, 1, -1, 0, -3, -4, 0, -3, -3, -2, 0, -1, -4, -3, -3, 4, 1, -1, -4},
    {-1, 0, 0, 1, -3, 3, 4, -2, 0, -3, -3, 1, -1, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1, -4},
    {0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2, 0, 0, -2, -1, -1, -1, -1, -1, -4},
    {-4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, 1},
}};

}  // namespace

std::size_t Nw::length_for(ProblemSize s) {
  switch (s) {
    case ProblemSize::kTiny:
      return 48;
    case ProblemSize::kSmall:
      return 176;
    case ProblemSize::kMedium:
      return 1008;
    case ProblemSize::kLarge:
      return 4096;
  }
  return 0;
}

void Nw::setup(ProblemSize size) {
  configure(length_for(size), kPenalty);
}

void Nw::configure(std::size_t n, std::int32_t penalty) {
  require(n >= B && n % B == 0, xcl::Status::kInvalidValue,
          "nw length must be a positive multiple of 16");
  require(penalty >= 0, xcl::Status::kInvalidValue,
          "nw penalty must be non-negative");
  n_ = n;
  penalty_ = penalty;
  const std::size_t m = n_ + 1;
  SplitMix64 rng(0x6e77ull);  // "nw"
  std::vector<std::uint8_t> seq1(m), seq2(m);
  for (std::size_t i = 1; i < m; ++i) {
    seq1[i] = static_cast<std::uint8_t>(rng.below(23));  // residue codes
    seq2[i] = static_cast<std::uint8_t>(rng.below(23));
  }
  similarity_.assign(m * m, 0);
  for (std::size_t i = 1; i < m; ++i) {
    for (std::size_t j = 1; j < m; ++j) {
      similarity_[i * m + j] = kBlosum62[seq1[i]][seq2[j]];
    }
  }
  init_matrix_.assign(m * m, 0);
  for (std::size_t i = 1; i < m; ++i) {
    init_matrix_[i * m] = -static_cast<std::int32_t>(i) * penalty_;
    init_matrix_[i] = -static_cast<std::int32_t>(i) * penalty_;
  }
  result_.assign(m * m, 0);
}

void Nw::bind(xcl::Context& ctx, xcl::Queue& q) {
  queue_ = &q;
  const std::size_t bytes = init_matrix_.size() * sizeof(std::int32_t);
  score_buf_.emplace(ctx, bytes);
  sim_buf_.emplace(ctx, bytes);
  q.enqueue_write<std::int32_t>(*sim_buf_, similarity_);
}

xcl::Kernel Nw::make_block_kernel(xcl::Buffer& score_buf, xcl::Buffer& sim_buf,
                                  std::size_t m, std::int32_t penalty,
                                  std::size_t d, std::size_t lo) {
  auto score = score_buf.access<std::int32_t>("score");
  auto sim = sim_buf.access<const std::int32_t>("similarity");

  xcl::Kernel kernel("nw_block", [=](xcl::WorkItem& it) {
    const std::size_t bi = lo + it.group_id(0);
    const std::size_t bj = d - bi;
    const std::size_t row0 = 1 + bi * B;
    const std::size_t col0 = 1 + bj * B;
    const std::size_t c = it.local_id(0);  // column owned by this item
    // Internal anti-diagonal wavefront: cell (r,c) is ready at step r+c.
    for (std::size_t t = 0; t < 2 * B - 1; ++t) {
      if (t >= c && t - c < B) {
        const std::size_t r = t - c;
        const std::size_t gr = row0 + r;
        const std::size_t gc = col0 + c;
        const std::int32_t diag =
            score[(gr - 1) * m + gc - 1] + sim[gr * m + gc];
        const std::int32_t up = score[(gr - 1) * m + gc] - penalty;
        const std::int32_t left = score[gr * m + gc - 1] - penalty;
        score[gr * m + gc] = std::max({diag, up, left});
      }
      it.barrier();
    }
  });
  kernel.uses_barriers();

  // Span tier for a barrier kernel (DESIGN.md §9): one call computes the
  // whole B x B block row-major.  Row-major order satisfies every
  // diag/up/left dependency the intra-block wavefront's barriers
  // enforced, and integer max has no rounding, so the scores are
  // bit-identical to the fiber path.  One group is exactly one block, so
  // begin / B recovers the group index.
  kernel.span([=](std::size_t begin, std::size_t /*end*/) {
    const std::size_t bi = lo + begin / B;
    const std::size_t bj = d - bi;
    const std::size_t row0 = 1 + bi * B;
    const std::size_t col0 = 1 + bj * B;
    std::int32_t* EOD_RESTRICT sc = score.data();
    const std::int32_t* EOD_RESTRICT sm = sim.data();
    for (std::size_t r = 0; r < B; ++r) {
      for (std::size_t c = 0; c < B; ++c) {
        const std::size_t gr = row0 + r;
        const std::size_t gc = col0 + c;
        const std::int32_t diag =
            sc[(gr - 1) * m + gc - 1] + sm[gr * m + gc];
        const std::int32_t up = sc[(gr - 1) * m + gc] - penalty;
        const std::int32_t left = sc[gr * m + gc - 1] - penalty;
        sc[gr * m + gc] = std::max({diag, up, left});
      }
    }
  });
  return kernel;
}

xcl::WorkloadProfile Nw::block_profile(std::size_t m, std::size_t groups) {
  const double cells = static_cast<double>(groups) * B * B;
  xcl::WorkloadProfile prof;
  prof.int_ops = cells * 10.0;
  prof.bytes_read = cells * 4.0 * sizeof(std::int32_t);
  prof.bytes_written = cells * sizeof(std::int32_t);
  prof.working_set_bytes =
      static_cast<double>(2 * m) * m * sizeof(std::int32_t);
  prof.pattern = xcl::AccessPattern::kTiled;
  return prof;
}

void Nw::enqueue_diagonal(std::size_t d, std::size_t nb) {
  const std::size_t m = n_ + 1;
  // Blocks (bi, bj) with bi + bj == d, both < nb; the cell grid starts at
  // (1,1) so block (bi,bj) covers rows 1+bi*B .. and cols 1+bj*B ..
  const std::size_t lo = d >= nb ? d - nb + 1 : 0;
  const std::size_t hi = std::min(d, nb - 1);
  const std::size_t groups = hi - lo + 1;
  xcl::Kernel kernel =
      make_block_kernel(*score_buf_, *sim_buf_, m, penalty_, d, lo);
  queue_->enqueue(kernel, xcl::NDRange(groups * B, B),
                  block_profile(m, groups));
}

void Nw::run() {
  // The sweep is destructive, so each iteration re-uploads the initialized
  // boundary matrix.
  queue_->enqueue_write<std::int32_t>(*score_buf_, init_matrix_);
  const std::size_t nb = n_ / B;
  for (std::size_t d = 0; d < 2 * nb - 1; ++d) enqueue_diagonal(d, nb);
}

void Nw::finish() {
  queue_->enqueue_read<std::int32_t>(*score_buf_, std::span(result_));
}

Validation Nw::validate() {
  const std::size_t m = n_ + 1;
  std::vector<std::int32_t> want = init_matrix_;
  for (std::size_t i = 1; i < m; ++i) {
    for (std::size_t j = 1; j < m; ++j) {
      const std::int32_t diag =
          want[(i - 1) * m + j - 1] + similarity_[i * m + j];
      const std::int32_t up = want[(i - 1) * m + j] - penalty_;
      const std::int32_t left = want[i * m + j - 1] - penalty_;
      want[i * m + j] = std::max({diag, up, left});
    }
  }
  std::size_t bad = 0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    if (result_[i] != want[i]) ++bad;
  }
  Validation v;
  v.error = static_cast<double>(bad);
  v.ok = bad == 0;
  std::ostringstream os;
  os << "nw: " << bad << " of " << want.size()
     << " score cells mismatch the serial reference";
  v.detail = os.str();
  return v;
}

void Nw::stream_trace(sim::TraceWriter& out) const {
  // One full wavefront sweep in cell order: each cell reads its three
  // score neighbours and its similarity entry, then writes its score.
  const std::size_t m = n_ + 1;
  const std::uint64_t score_base = 0x10000;
  const std::uint64_t sim_base = score_base + m * m * 4;
  for (std::size_t i = 1; i < m; ++i) {
    for (std::size_t j = 1; j < m; ++j) {
      out.emit(score_base + ((i - 1) * m + j - 1) * 4, 4, false);
      out.emit(score_base + ((i - 1) * m + j) * 4, 4, false);
      out.emit(score_base + (i * m + j - 1) * 4, 4, false);
      out.emit(sim_base + (i * m + j) * 4, 4, false);
      out.emit(score_base + (i * m + j) * 4, 4, true);
    }
  }
}

std::size_t Nw::trace_size_hint() const {
  const std::size_t m = n_ + 1;
  return (m - 1) * (m - 1) * 5;
}

void Nw::unbind() {
  sim_buf_.reset();
  score_buf_.reset();
  queue_ = nullptr;
}

}  // namespace eod::dwarfs
