// Needleman-Wunsch sequence alignment -- the Dynamic Programming dwarf.
//
// Rodinia-style blocked anti-diagonal sweep: the (n+1)^2 score matrix is
// processed in 16x16 blocks, one kernel launch per block diagonal, with a
// barrier-stepped internal wavefront inside each work-group.  The benchmark
// is launch-intensive (2*(n/16)-1 launches), which is exactly what exposes
// the AMD runtime's enqueue cost in the paper's Fig. 3b.
//
// Similarity comes from the BLOSUM62 substitution matrix over two random
// residue sequences, with a linear gap penalty of 10 (Table 3: nw Phi 10).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dwarfs/common.hpp"
#include "xcl/kernel.hpp"
#include "xcl/modeling.hpp"

namespace eod::dwarfs {

class Nw final : public Dwarf {
 public:
  static constexpr std::size_t kBlock = 16;
  static constexpr std::int32_t kPenalty = 10;  // Table 3: nw Phi 10

  /// Table 2, nw row: Phi = sequence length n.
  [[nodiscard]] static std::size_t length_for(ProblemSize s);

  /// Custom length/penalty (n must be a multiple of kBlock); setup(size)
  /// is the Table 2/3 preset configure(length_for(size), kPenalty).
  void configure(std::size_t n, std::int32_t penalty);

  [[nodiscard]] std::string name() const override { return "nw"; }
  [[nodiscard]] std::string berkeley_dwarf() const override {
    return "Dynamic Programming";
  }
  [[nodiscard]] std::string scale_parameter(ProblemSize s) const override {
    return std::to_string(length_for(s));
  }
  /// Score matrix + similarity matrix, each (n+1)^2 int32.
  [[nodiscard]] std::size_t footprint_bytes(ProblemSize s) const override {
    const std::size_t m = length_for(s) + 1;
    return 2 * m * m * sizeof(std::int32_t);
  }

  using Dwarf::stream_trace;
  void stream_trace(sim::TraceWriter& out) const override;
  [[nodiscard]] std::size_t trace_size_hint() const override;

  void setup(ProblemSize size) override;
  void bind(xcl::Context& ctx, xcl::Queue& q) override;
  void run() override;
  void finish() override;
  [[nodiscard]] Validation validate() override;
  void unbind() override;

  /// Full score matrix after the sweep, byte-exact.
  [[nodiscard]] std::uint64_t result_signature() const override {
    return hash_result<std::int32_t>(result_);
  }

  // ---- shared kernel construction (harness/partition reuses it) ----

  /// Builds the "nw_block" kernel computing blocks (bi = lo + group,
  /// bj = d - bi) of global block-diagonal `d` on an (m x m) score matrix.
  /// Carries both the fiber wavefront body and the bit-identical row-major
  /// span body, so every caller composes with --dispatch=span.  The
  /// single-device sweep and the partitioned multi-device runner both
  /// launch exactly this kernel, which is what makes their results
  /// byte-exact against each other.
  [[nodiscard]] static xcl::Kernel make_block_kernel(xcl::Buffer& score,
                                                     xcl::Buffer& sim,
                                                     std::size_t m,
                                                     std::int32_t penalty,
                                                     std::size_t d,
                                                     std::size_t lo);
  /// Workload profile of a `groups`-block diagonal launch on that matrix.
  [[nodiscard]] static xcl::WorkloadProfile block_profile(std::size_t m,
                                                          std::size_t groups);

  // ---- partitioned-runner access (harness/partition) ----
  [[nodiscard]] std::size_t length() const noexcept { return n_; }
  [[nodiscard]] std::int32_t penalty() const noexcept { return penalty_; }
  [[nodiscard]] const std::vector<std::int32_t>& similarity() const noexcept {
    return similarity_;
  }
  /// Boundary-initialised score matrix each sweep starts from.
  [[nodiscard]] const std::vector<std::int32_t>& boundary() const noexcept {
    return init_matrix_;
  }
  /// Installs an externally computed score matrix (the partitioned runner's
  /// assembled stripes) so validate()/result_signature() work unchanged.
  void adopt_result(std::vector<std::int32_t> result) {
    require(result.size() == init_matrix_.size(), xcl::Status::kInvalidValue,
            "nw adopted result has the wrong shape");
    result_ = std::move(result);
  }

 private:
  void enqueue_diagonal(std::size_t d, std::size_t nb);

  std::size_t n_ = 0;
  std::int32_t penalty_ = kPenalty;
  std::vector<std::int32_t> init_matrix_;  // boundary-initialised scores
  std::vector<std::int32_t> similarity_;   // (n+1)^2, BLOSUM62 lookups
  std::vector<std::int32_t> result_;

  xcl::Queue* queue_ = nullptr;
  std::optional<xcl::Buffer> score_buf_;
  std::optional<xcl::Buffer> sim_buf_;
};

}  // namespace eod::dwarfs
