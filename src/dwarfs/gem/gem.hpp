// Gemnoui electrostatic potential -- the N-Body Methods dwarf.
//
// gem computes the Coulomb potential of a biomolecular structure at points
// on its solvent-excluded surface.  The paper's molecule inputs (PDB ->
// pdb2pqr -> msms pipeline: 4TUT, 2D3V, nucleosome, 1KX5) are replaced by a
// deterministic pseudo-molecule generator producing the same atom counts
// and device-side footprints (§4.4.4: 31.3 KiB / 252 KiB / 7498 KiB /
// 10970.2 KiB); the kernel -- an all-pairs charge sum per surface vertex --
// is identical.  Only the tiny size is validated functionally, mirroring
// the paper (medium/large inputs were found to carry uninitialized values).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "dwarfs/common.hpp"

namespace eod::dwarfs {

/// A synthetic molecule in pqr-like form: positions, charges, radii.
struct Molecule {
  std::vector<float> x, y, z, q, r;
  [[nodiscard]] std::size_t atoms() const noexcept { return x.size(); }
};

/// Deterministically generates `atoms` atoms packed in a ball, with
/// alternating partial charges (pqr-style).
[[nodiscard]] Molecule generate_molecule(std::size_t atoms,
                                         std::uint64_t seed);

/// Writes a molecule in PQR format (the pdb2pqr output gem consumes:
/// ATOM records carrying position, charge and radius).
void save_pqr(const Molecule& m, const std::string& path);

/// Loads the ATOM/HETATM records of a PQR file; throws std::runtime_error
/// on IO or format errors.
[[nodiscard]] Molecule load_pqr(const std::string& path);

class Gem final : public Dwarf {
 public:
  /// Atom counts reproducing the paper's per-molecule footprints.
  [[nodiscard]] static std::size_t atoms_for(ProblemSize s);
  /// Molecule names from Table 2 (4TUT, 2D3V, nucleosome, 1KX5).
  [[nodiscard]] static const char* molecule_for(ProblemSize s);

  /// Custom molecule size; setup(size) is the named-molecule preset
  /// configure(atoms_for(size)).
  void configure(std::size_t atoms);

  /// Uses a caller-supplied molecule (e.g. loaded from a .pqr file, the
  /// pdb2pqr output the paper's gem consumes).
  void configure_with_molecule(Molecule molecule);

  [[nodiscard]] std::string name() const override { return "gem"; }
  [[nodiscard]] std::string berkeley_dwarf() const override {
    return "N-Body Methods";
  }
  [[nodiscard]] std::string scale_parameter(ProblemSize s) const override {
    return molecule_for(s);
  }
  /// Atoms (x,y,z,q) + surface vertices (x,y,z) + potentials; V = 2*A.
  [[nodiscard]] std::size_t footprint_bytes(ProblemSize s) const override {
    const std::size_t a = atoms_for(s);
    return a * 4 * sizeof(float) + 2 * a * 4 * sizeof(float);
  }

  using Dwarf::stream_trace;
  void stream_trace(sim::TraceWriter& out) const override;
  [[nodiscard]] std::size_t trace_size_hint() const override;

  void setup(ProblemSize size) override;
  void bind(xcl::Context& ctx, xcl::Queue& q) override;
  void run() override;
  void finish() override;
  [[nodiscard]] Validation validate() override;
  void unbind() override;

  /// Surface potential vector, byte-exact.
  [[nodiscard]] std::uint64_t result_signature() const override {
    return hash_result<float>(potential_);
  }

 private:
  void place_surface_vertices();

  /// One vertex-range tile of the potential kernel (tiled write-back,
  /// DESIGN.md §12): finish() reads tile [begin, end) of the potential
  /// buffer waiting only on that tile's kernel, so on an out-of-order
  /// queue each tile's read-back overlaps the later tiles' compute.
  struct Tile {
    std::size_t begin = 0;
    std::size_t end = 0;
    xcl::Event kernel;
  };

  Molecule mol_;
  std::vector<float> vx_, vy_, vz_;  // surface vertices
  std::vector<float> potential_;
  std::vector<Tile> tiles_;  // filled by run(), consumed by finish()

  xcl::Queue* queue_ = nullptr;
  std::optional<xcl::Buffer> atoms_buf_;  // xyzq interleaved
  std::optional<xcl::Buffer> verts_buf_;  // xyz interleaved
  std::optional<xcl::Buffer> pot_buf_;
};

}  // namespace eod::dwarfs
