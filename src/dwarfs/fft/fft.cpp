#include "dwarfs/fft/fft.hpp"

#include <cmath>

#include "xcl/kernel.hpp"

namespace eod::dwarfs {

std::size_t Fft::length_for(ProblemSize s) {
  switch (s) {
    case ProblemSize::kTiny:
      return 2048;
    case ProblemSize::kSmall:
      return 16384;
    case ProblemSize::kMedium:
      return 524288;
    case ProblemSize::kLarge:
      return 2097152;
  }
  return 0;
}

void Fft::setup(ProblemSize size) { configure(length_for(size)); }

void Fft::configure(std::size_t n, FftDirection dir) {
  require(n >= 2 && (n & (n - 1)) == 0, xcl::Status::kInvalidValue,
          "fft length must be a power of two >= 2");
  n_ = n;
  dir_ = dir;
  SplitMix64 rng(0x666674ull);  // "fft"
  input_.resize(2 * n_);
  for (float& v : input_) v = rng.uniform(-1.0f, 1.0f);
  output_.assign(2 * n_, 0.0f);
}

void Fft::set_input(std::span<const float> interleaved) {
  require(interleaved.size() == 2 * n_, xcl::Status::kInvalidValue,
          "fft input must hold 2n interleaved floats");
  input_.assign(interleaved.begin(), interleaved.end());
}

void Fft::bind(xcl::Context& ctx, xcl::Queue& q) {
  queue_ = &q;
  buf_a_.emplace(ctx, input_.size() * sizeof(float));
  buf_b_.emplace(ctx, input_.size() * sizeof(float));
}

void Fft::run() {
  const std::size_t n = n_;
  queue_->enqueue_write<float>(*buf_a_, input_);

  // Bainville-style radix-2 Stockham: at stage with parameter p the kernel
  // reads element i and i + N/2, applies the twiddle, and scatters to
  // j = ((i - k) << 1) + k and j + p where k = i mod p.  The inverse
  // conjugates the twiddles (positive angle) and scales by 1/N at the end.
  const float sign = dir_ == FftDirection::kForward ? -1.0f : 1.0f;
  bool src_is_a = true;
  for (std::size_t p = 1; p < n; p <<= 1) {
    xcl::Buffer& src = src_is_a ? *buf_a_ : *buf_b_;
    xcl::Buffer& dst = src_is_a ? *buf_b_ : *buf_a_;
    auto in = src.access<const float>("fft_src");
    auto out = dst.access<float>("fft_dst");

    xcl::Kernel stage("fft_radix2", [=](xcl::WorkItem& it) {
      const std::size_t i = it.global_id(0);
      if (i >= n / 2) return;
      const std::size_t k = i & (p - 1);
      const std::size_t j = ((i - k) << 1) + k;
      const float theta = sign * static_cast<float>(M_PI) *
                          static_cast<float>(k) / static_cast<float>(p);
      const float wr = std::cos(theta);
      const float wi = std::sin(theta);
      const float ur = in[2 * i];
      const float ui = in[2 * i + 1];
      const float xr = in[2 * (i + n / 2)];
      const float xi = in[2 * (i + n / 2) + 1];
      const float vr = xr * wr - xi * wi;
      const float vi = xr * wi + xi * wr;
      out[2 * j] = ur + vr;
      out[2 * j + 1] = ui + vi;
      out[2 * (j + p)] = ur - vr;
      out[2 * (j + p) + 1] = ui - vi;
    });

    xcl::WorkloadProfile prof;
    // 10 flops butterfly + ~16 for the native sin/cos pair.
    prof.flops = static_cast<double>(n / 2) * 26.0;
    prof.int_ops = static_cast<double>(n / 2) * 6.0;
    prof.bytes_read = static_cast<double>(n) * 2 * sizeof(float);
    prof.bytes_written = static_cast<double>(n) * 2 * sizeof(float);
    prof.working_set_bytes = static_cast<double>(4 * n) * sizeof(float);
    prof.pattern = xcl::AccessPattern::kButterfly;
    const std::size_t wg = std::min<std::size_t>(64, n / 2);
    queue_->enqueue(stage, xcl::NDRange(n / 2, wg), prof);

    src_is_a = !src_is_a;
  }

  if (dir_ == FftDirection::kInverse) {
    // 1/N normalisation pass on the final buffer.
    xcl::Buffer& result = src_is_a ? *buf_a_ : *buf_b_;
    auto data = result.access<float>("fft_result");
    const float inv_n = 1.0f / static_cast<float>(n);
    xcl::Kernel scale("fft_scale", [=](xcl::WorkItem& it) {
      const std::size_t i = it.global_id(0);
      if (i >= 2 * n) return;
      data[i] *= inv_n;
    });
    xcl::WorkloadProfile prof;
    prof.flops = static_cast<double>(2 * n);
    prof.bytes_read = static_cast<double>(2 * n) * sizeof(float);
    prof.bytes_written = static_cast<double>(2 * n) * sizeof(float);
    prof.working_set_bytes = static_cast<double>(2 * n) * sizeof(float);
    prof.pattern = xcl::AccessPattern::kStreaming;
    const std::size_t wg = std::min<std::size_t>(64, 2 * n);
    queue_->enqueue(scale, xcl::NDRange((2 * n + wg - 1) / wg * wg, wg),
                    prof);
  }
}

void Fft::finish() {
  // After an odd/even number of stages the final output sits in b_/a_:
  // stages = log2(n); the loop flips src_is_a once per stage starting from
  // true, so the last-written buffer is b when stages is odd, a when even.
  std::size_t stages = 0;
  for (std::size_t p = 1; p < n_; p <<= 1) ++stages;
  xcl::Buffer& result = (stages % 2 == 1) ? *buf_b_ : *buf_a_;
  queue_->enqueue_read<float>(result, std::span(output_));
}

void Fft::reference_fft(std::vector<std::complex<double>>& a) {
  const std::size_t n = a.size();
  if (n < 2) return;
  // Iterative Cooley-Tukey with bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -2.0 * M_PI / static_cast<double>(len);
    const std::complex<double> wl(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wl;
      }
    }
  }
}

void Fft::reference_ifft(std::vector<std::complex<double>>& a) {
  for (auto& v : a) v = std::conj(v);
  reference_fft(a);
  const double inv_n = 1.0 / static_cast<double>(a.size());
  for (auto& v : a) v = std::conj(v) * inv_n;
}

Validation Fft::validate() {
  std::vector<std::complex<double>> ref(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    ref[i] = {static_cast<double>(input_[2 * i]),
              static_cast<double>(input_[2 * i + 1])};
  }
  if (dir_ == FftDirection::kForward) {
    reference_fft(ref);
  } else {
    reference_ifft(ref);
  }
  std::vector<float> want(2 * n_);
  for (std::size_t i = 0; i < n_; ++i) {
    want[2 * i] = static_cast<float>(ref[i].real());
    want[2 * i + 1] = static_cast<float>(ref[i].imag());
  }
  return validate_norm(output_, want, 1e-3, "fft vs double-precision CT");
}

void Fft::stream_trace(sim::TraceWriter& out) const {
  // One full transform: log2(n) Stockham stages ping-ponging between two
  // complex buffers, in work-item order per stage.
  const std::uint64_t base_a = 0x10000;
  const std::uint64_t base_b = base_a + 2 * n_ * sizeof(float);
  bool src_is_a = true;
  for (std::size_t p = 1; p < n_; p <<= 1) {
    const std::uint64_t src = src_is_a ? base_a : base_b;
    const std::uint64_t dst = src_is_a ? base_b : base_a;
    for (std::size_t i = 0; i < n_ / 2; ++i) {
      const std::size_t k = i & (p - 1);
      const std::size_t j = ((i - k) << 1) + k;
      out.emit(src + 2 * i * sizeof(float), 8, false);
      out.emit(src + 2 * (i + n_ / 2) * sizeof(float), 8, false);
      out.emit(dst + 2 * j * sizeof(float), 8, true);
      out.emit(dst + 2 * (j + p) * sizeof(float), 8, true);
    }
    src_is_a = !src_is_a;
  }
}

std::size_t Fft::trace_size_hint() const {
  std::size_t stages = 0;
  for (std::size_t p = 1; p < n_; p <<= 1) ++stages;
  return stages * 2 * n_;
}

void Fft::unbind() {
  buf_b_.reset();
  buf_a_.reset();
  queue_ = nullptr;
}

}  // namespace eod::dwarfs
