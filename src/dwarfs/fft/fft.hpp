// Radix-2 Stockham FFT -- the Spectral Methods dwarf.
//
// The paper replaced the original OpenDwarfs FFT (complex, incorrect on
// some platforms) with Eric Bainville's simple high-performance OpenCL FFT;
// this is that algorithm: log2(N) radix-2 Stockham stages ping-ponging
// between two complex buffers, no bit-reversal pass.  footprint = 2 buffers
// of N complex floats: N = 2048 is exactly the 32 KiB L1 class.
#pragma once

#include <complex>
#include <cstddef>
#include <optional>
#include <vector>

#include "dwarfs/common.hpp"

namespace eod::dwarfs {

enum class FftDirection : std::uint8_t { kForward, kInverse };

class Fft final : public Dwarf {
 public:
  /// Table 2, fft row: Phi = transform length N (power of two).
  [[nodiscard]] static std::size_t length_for(ProblemSize s);

  /// Custom transform length (power of two >= 2) and direction; setup(size)
  /// is the Table 2 preset configure(length_for(size)).  The inverse runs
  /// the same Stockham stages with conjugated twiddles plus a 1/N scale
  /// kernel.
  void configure(std::size_t n, FftDirection dir = FftDirection::kForward);

  /// Replaces the generated input with caller data (2n interleaved floats);
  /// used to chain a forward and an inverse transform on the device.
  void set_input(std::span<const float> interleaved);

  [[nodiscard]] std::string name() const override { return "fft"; }
  [[nodiscard]] std::string berkeley_dwarf() const override {
    return "Spectral Methods";
  }
  [[nodiscard]] std::string scale_parameter(ProblemSize s) const override {
    return std::to_string(length_for(s));
  }
  [[nodiscard]] std::size_t footprint_bytes(ProblemSize s) const override {
    return 2 * length_for(s) * 2 * sizeof(float);
  }

  using Dwarf::stream_trace;
  void stream_trace(sim::TraceWriter& out) const override;
  [[nodiscard]] std::size_t trace_size_hint() const override;

  void setup(ProblemSize size) override;
  void bind(xcl::Context& ctx, xcl::Queue& q) override;
  void run() override;
  void finish() override;
  [[nodiscard]] Validation validate() override;
  void unbind() override;

  /// Double-precision serial reference (iterative Cooley-Tukey).
  static void reference_fft(std::vector<std::complex<double>>& data);
  /// Serial inverse (conjugate + forward + conjugate + 1/N).
  static void reference_ifft(std::vector<std::complex<double>>& data);

  /// The transformed spectrum/signal (valid after finish()).
  [[nodiscard]] const std::vector<float>& output() const noexcept {
    return output_;
  }

 private:
  std::size_t n_ = 0;
  FftDirection dir_ = FftDirection::kForward;
  std::vector<float> input_;   // interleaved re/im
  std::vector<float> output_;  // interleaved re/im

  xcl::Queue* queue_ = nullptr;
  std::optional<xcl::Buffer> buf_a_;
  std::optional<xcl::Buffer> buf_b_;
};

}  // namespace eod::dwarfs
