// CSR sparse matrix-vector multiply -- the Sparse Linear Algebra dwarf.
//
// The input matrix is produced by a createcsr-equivalent generator
// (Table 3: createcsr -n Phi -d 5000, i.e. 0.5% dense) with a fixed seed;
// the kernel is row-per-work-item SpMV with indirect gathers into x.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dwarfs/common.hpp"

namespace eod::dwarfs {

/// A CSR matrix as written by the createcsr tool.
struct CsrMatrix {
  std::size_t n = 0;  ///< square dimension
  std::vector<std::uint32_t> row_ptr;  ///< n+1 offsets
  std::vector<std::uint32_t> cols;
  std::vector<float> vals;

  [[nodiscard]] std::size_t nnz() const noexcept { return vals.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return row_ptr.size() * sizeof(std::uint32_t) +
           cols.size() * sizeof(std::uint32_t) + vals.size() * sizeof(float);
  }
};

/// createcsr equivalent: uniform random pattern at the given density, with
/// ~density*n entries per row (deterministic for a given seed).
[[nodiscard]] CsrMatrix create_csr(std::size_t n, double density,
                                   std::uint64_t seed);

class Csr final : public Dwarf {
 public:
  static constexpr double kDensity = 0.005;  // -d 5000 per mille -> 0.5%

  /// Table 2, csr row: Phi = matrix dimension.
  [[nodiscard]] static std::size_t dim_for(ProblemSize s);

  /// Custom dimension/density (createcsr -n/-d); setup(size) is the
  /// Table 2 preset configure(dim_for(size), kDensity).
  void configure(std::size_t n, double density);

  /// Uses a pre-built matrix (Table 3: `csr -i Psi` loads the file written
  /// by createcsr; see csr_io.hpp).
  void configure_with_matrix(CsrMatrix matrix);

  [[nodiscard]] std::string name() const override { return "csr"; }
  [[nodiscard]] std::string berkeley_dwarf() const override {
    return "Sparse Linear Algebra";
  }
  [[nodiscard]] std::string scale_parameter(ProblemSize s) const override {
    return std::to_string(dim_for(s));
  }
  [[nodiscard]] std::size_t footprint_bytes(ProblemSize s) const override;

  void setup(ProblemSize size) override;
  void bind(xcl::Context& ctx, xcl::Queue& q) override;
  void run() override;
  void finish() override;
  [[nodiscard]] Validation validate() override;
  void unbind() override;

  using Dwarf::stream_trace;
  void stream_trace(sim::TraceWriter& out) const override;
  [[nodiscard]] std::size_t trace_size_hint() const override;

  /// y = Ax product vector, byte-exact.
  [[nodiscard]] std::uint64_t result_signature() const override {
    return hash_result<float>(y_);
  }

 private:
  CsrMatrix m_;
  std::vector<float> x_;
  std::vector<float> y_;

  xcl::Queue* queue_ = nullptr;
  std::optional<xcl::Buffer> rowptr_buf_;
  std::optional<xcl::Buffer> cols_buf_;
  std::optional<xcl::Buffer> vals_buf_;
  std::optional<xcl::Buffer> x_buf_;
  std::optional<xcl::Buffer> y_buf_;
};

}  // namespace eod::dwarfs
