#include "dwarfs/csr/csr_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace eod::dwarfs {

namespace {

constexpr char kMagic[8] = {'E', 'O', 'D', 'C', 'S', 'R', '0', '1'};

template <typename T>
void write_array(std::ofstream& out, const std::vector<T>& v) {
  const std::uint64_t count = v.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(count * sizeof(T)));
}

template <typename T>
std::vector<T> read_array(std::ifstream& in, const std::string& what) {
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) throw std::runtime_error("truncated .csr header for " + what);
  if (count > (1ull << 32)) {
    throw std::runtime_error("implausible .csr array size for " + what);
  }
  std::vector<T> v(count);
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) throw std::runtime_error("truncated .csr data for " + what);
  return v;
}

}  // namespace

void save_csr(const CsrMatrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t n = m.n;
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  write_array(out, m.row_ptr);
  write_array(out, m.cols);
  write_array(out, m.vals);
  if (!out) throw std::runtime_error("write failed: " + path);
}

CsrMatrix load_csr(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a .csr file: " + path);
  }
  CsrMatrix m;
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  if (!in) throw std::runtime_error("truncated .csr: " + path);
  m.n = n;
  m.row_ptr = read_array<std::uint32_t>(in, "row_ptr");
  m.cols = read_array<std::uint32_t>(in, "cols");
  m.vals = read_array<float>(in, "vals");

  // Structural validation: the loader must reject corrupted matrices
  // rather than hand the kernel out-of-bounds indices.
  if (m.row_ptr.size() != m.n + 1 || m.row_ptr.front() != 0 ||
      m.row_ptr.back() != m.cols.size() ||
      m.cols.size() != m.vals.size()) {
    throw std::runtime_error("inconsistent .csr structure: " + path);
  }
  for (std::size_t r = 0; r < m.n; ++r) {
    if (m.row_ptr[r] > m.row_ptr[r + 1]) {
      throw std::runtime_error("non-monotone row_ptr in " + path);
    }
  }
  for (const std::uint32_t c : m.cols) {
    if (c >= m.n) throw std::runtime_error("column out of range in " + path);
  }
  return m;
}

}  // namespace eod::dwarfs
