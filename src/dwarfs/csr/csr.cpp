#include "dwarfs/csr/csr.hpp"

#include <algorithm>

#include "xcl/kernel.hpp"
#include "xcl/simd.hpp"

namespace eod::dwarfs {

CsrMatrix create_csr(std::size_t n, double density, std::uint64_t seed) {
  CsrMatrix m;
  m.n = n;
  m.row_ptr.resize(n + 1, 0);
  SplitMix64 rng(seed);
  const auto per_row = std::max<std::size_t>(
      1, static_cast<std::size_t>(density * static_cast<double>(n)));
  std::vector<std::uint32_t> row_cols;
  for (std::size_t r = 0; r < n; ++r) {
    row_cols.clear();
    while (row_cols.size() < per_row) {
      const auto c = static_cast<std::uint32_t>(rng.below(n));
      if (std::find(row_cols.begin(), row_cols.end(), c) == row_cols.end()) {
        row_cols.push_back(c);
      }
    }
    std::sort(row_cols.begin(), row_cols.end());
    for (const std::uint32_t c : row_cols) {
      m.cols.push_back(c);
      m.vals.push_back(rng.uniform(-1.0f, 1.0f));
    }
    m.row_ptr[r + 1] = static_cast<std::uint32_t>(m.cols.size());
  }
  return m;
}

std::size_t Csr::dim_for(ProblemSize s) {
  switch (s) {
    case ProblemSize::kTiny:
      return 736;
    case ProblemSize::kSmall:
      return 2416;
    case ProblemSize::kMedium:
      return 14336;
    case ProblemSize::kLarge:
      return 16384;
  }
  return 0;
}

std::size_t Csr::footprint_bytes(ProblemSize s) const {
  const std::size_t n = dim_for(s);
  const auto per_row = std::max<std::size_t>(
      1, static_cast<std::size_t>(kDensity * static_cast<double>(n)));
  const std::size_t nnz = n * per_row;
  return nnz * (sizeof(float) + sizeof(std::uint32_t)) +
         (n + 1) * sizeof(std::uint32_t) + 2 * n * sizeof(float);
}

void Csr::setup(ProblemSize size) { configure(dim_for(size), kDensity); }

void Csr::configure_with_matrix(CsrMatrix matrix) {
  require(matrix.n > 0, xcl::Status::kInvalidValue, "empty CSR matrix");
  m_ = std::move(matrix);
  SplitMix64 rng(0x637372aaull);
  x_.resize(m_.n);
  for (float& v : x_) v = rng.uniform(-1.0f, 1.0f);
  y_.assign(m_.n, 0.0f);
}

void Csr::configure(std::size_t n, double density) {
  m_ = create_csr(n, density, 0x637372ull);  // "csr"
  SplitMix64 rng(0x637372aaull);
  x_.resize(n);
  for (float& v : x_) v = rng.uniform(-1.0f, 1.0f);
  y_.assign(n, 0.0f);
}

void Csr::bind(xcl::Context& ctx, xcl::Queue& q) {
  queue_ = &q;
  rowptr_buf_.emplace(ctx, m_.row_ptr.size() * sizeof(std::uint32_t));
  cols_buf_.emplace(ctx, m_.cols.size() * sizeof(std::uint32_t));
  vals_buf_.emplace(ctx, m_.vals.size() * sizeof(float));
  x_buf_.emplace(ctx, x_.size() * sizeof(float));
  y_buf_.emplace(ctx, y_.size() * sizeof(float));
  q.enqueue_write<std::uint32_t>(*rowptr_buf_, m_.row_ptr);
  q.enqueue_write<std::uint32_t>(*cols_buf_, m_.cols);
  q.enqueue_write<float>(*vals_buf_, m_.vals);
  q.enqueue_write<float>(*x_buf_, x_);
}

void Csr::run() {
  const std::size_t n = m_.n;
  auto row_ptr = rowptr_buf_->access<const std::uint32_t>("row_ptr");
  auto cols = cols_buf_->access<const std::uint32_t>("cols");
  auto vals = vals_buf_->access<const float>("vals");
  auto x = x_buf_->access<const float>("x");
  auto y = y_buf_->access<float>("y");

  xcl::Kernel spmv("csr_spmv", [=](xcl::WorkItem& it) {
    const std::size_t r = it.global_id(0);
    if (r >= n) return;
    float acc = 0.0f;
    for (std::uint32_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      acc += vals[k] * x[cols[k]];
    }
    y[r] = acc;
  });

  // Span tier: one call per group of rows; restrict pointers let the
  // compiler keep row_ptr/vals/cols loads out of each other's way (the
  // x gather itself stays serial, as on real hardware).
  spmv.span([=](std::size_t begin, std::size_t end) {
    const std::uint32_t* EOD_RESTRICT rp = row_ptr.data();
    const std::uint32_t* EOD_RESTRICT ci = cols.data();
    const float* EOD_RESTRICT va = vals.data();
    const float* EOD_RESTRICT xv = x.data();
    float* EOD_RESTRICT yv = y.data();
    for (std::size_t r = begin, last = std::min(end, n); r < last; ++r) {
      float acc = 0.0f;
      for (std::uint32_t k = rp[r]; k < rp[r + 1]; ++k) {
        acc += va[k] * xv[ci[k]];
      }
      yv[r] = acc;
    }
  });

  // Simd tier (DESIGN.md §13): W rows per step, lanes advancing in
  // lockstep through nonzero position k of their own row.  Each lane's
  // products accumulate in exactly the scalar order (k = 0, 1, ... within
  // that row); lanes whose row is exhausted carry their accumulator through
  // a mask select, which is a pure bitwise blend -- never `+ 0.0f`, which
  // would flush a negative zero.  Gathers stay scalar, as on real SpMV
  // hardware; the win is amortizing the row loop control across lanes.
  spmv.simd([=](std::size_t begin, std::size_t end) {
    namespace sv = xcl::simd;
    constexpr std::size_t W = sv::kLanes;
    const std::uint32_t* EOD_RESTRICT rp = row_ptr.data();
    const std::uint32_t* EOD_RESTRICT ci = cols.data();
    const float* EOD_RESTRICT va = vals.data();
    const float* EOD_RESTRICT xv = x.data();
    float* EOD_RESTRICT yv = y.data();
    std::size_t r = begin;
    const std::size_t last = std::min(end, n);
    for (; r + W <= last; r += W) {
      std::uint32_t start[W];
      std::uint32_t len[W];
      std::uint32_t max_len = 0;
      for (std::size_t l = 0; l < W; ++l) {
        start[l] = rp[r + l];
        len[l] = rp[r + l + 1] - start[l];
        max_len = std::max(max_len, len[l]);
      }
      sv::vfloat acc = sv::vbroadcast(0.0f);
      for (std::uint32_t k = 0; k < max_len; ++k) {
        sv::vfloat vv = sv::vbroadcast(0.0f);
        sv::vfloat xx = sv::vbroadcast(0.0f);
        sv::vint32 active = sv::vbroadcast_i32(0);
        for (std::size_t l = 0; l < W; ++l) {
          if (k < len[l]) {
            const std::uint32_t idx = start[l] + k;
            vv[l] = va[idx];
            xx[l] = xv[ci[idx]];
            active[l] = -1;
          }
        }
        acc = sv::vselect(active, acc + vv * xx, acc);
      }
      for (std::size_t l = 0; l < W; ++l) yv[r + l] = acc[l];
    }
    for (; r < last; ++r) {
      float acc = 0.0f;
      for (std::uint32_t k = rp[r]; k < rp[r + 1]; ++k) {
        acc += va[k] * xv[ci[k]];
      }
      yv[r] = acc;
    }
  });

  const double nnz = static_cast<double>(m_.nnz());
  xcl::WorkloadProfile prof;
  prof.flops = 2.0 * nnz;
  prof.int_ops = 3.0 * nnz;
  prof.bytes_read = nnz * (sizeof(float) + sizeof(std::uint32_t) +
                           sizeof(float)) +  // vals, cols, gathered x
                    static_cast<double>(n + 1) * sizeof(std::uint32_t);
  prof.bytes_written = static_cast<double>(n) * sizeof(float);
  prof.working_set_bytes = static_cast<double>(
      m_.bytes() + 2 * n * sizeof(float));
  prof.pattern = xcl::AccessPattern::kGather;
  // Row lengths vary around the mean: mild divergence within a SIMD group.
  prof.branch_divergence = 0.1;
  const std::size_t wg = 64;
  queue_->enqueue(spmv, xcl::NDRange((n + wg - 1) / wg * wg, wg), prof);
}

void Csr::finish() {
  queue_->enqueue_read<float>(*y_buf_, std::span(y_));
}

Validation Csr::validate() {
  std::vector<float> want(m_.n, 0.0f);
  for (std::size_t r = 0; r < m_.n; ++r) {
    double acc = 0.0;
    for (std::uint32_t k = m_.row_ptr[r]; k < m_.row_ptr[r + 1]; ++k) {
      acc += static_cast<double>(m_.vals[k]) * x_[m_.cols[k]];
    }
    want[r] = static_cast<float>(acc);
  }
  return validate_norm(y_, want, 1e-5, "csr SpMV");
}

void Csr::unbind() {
  y_buf_.reset();
  x_buf_.reset();
  vals_buf_.reset();
  cols_buf_.reset();
  rowptr_buf_.reset();
  queue_ = nullptr;
}

void Csr::stream_trace(sim::TraceWriter& out) const {
  const std::uint64_t rp_base = 0x10000;
  const std::uint64_t cols_base = rp_base + m_.row_ptr.size() * 4;
  const std::uint64_t vals_base = cols_base + m_.cols.size() * 4;
  const std::uint64_t x_base = vals_base + m_.vals.size() * 4;
  const std::uint64_t y_base = x_base + x_.size() * 4;
  for (std::size_t r = 0; r < m_.n; ++r) {
    out.emit(rp_base + r * 4, 8, false);
    for (std::uint32_t k = m_.row_ptr[r]; k < m_.row_ptr[r + 1]; ++k) {
      out.emit(cols_base + k * 4ull, 4, false);
      out.emit(vals_base + k * 4ull, 4, false);
      out.emit(x_base + m_.cols[k] * 4ull, 4, false);
    }
    out.emit(y_base + r * 4, 4, true);
  }
}

std::size_t Csr::trace_size_hint() const {
  return 2 * m_.n + 3 * m_.cols.size();
}

}  // namespace eod::dwarfs
