// CSR matrix file IO -- Table 3's csr workflow is two-stage: `createcsr -n
// Phi -d 5000` writes a matrix file (the paper's Psi), and `csr -i Psi`
// loads it.  This module defines that file format: a small magic/header
// block followed by the row_ptr / cols / vals arrays, little-endian.
#pragma once

#include <string>

#include "dwarfs/csr/csr.hpp"

namespace eod::dwarfs {

/// Writes `m` to `path` in the suite's .csr format.  Throws
/// std::runtime_error on IO failure.
void save_csr(const CsrMatrix& m, const std::string& path);

/// Loads a .csr file; throws std::runtime_error on IO/format errors
/// (bad magic, truncated arrays, inconsistent row pointers).
[[nodiscard]] CsrMatrix load_csr(const std::string& path);

}  // namespace eod::dwarfs
