// Cyclic redundancy check -- the Combinational Logic dwarf.
//
// Each work-item computes the CRC32 (reflected 0xEDB88320 polynomial,
// table-driven) of one page of the input buffer; the result is one CRC per
// page, validated bit-exactly against a serial implementation.  The paper
// singles crc out as the one benchmark where CPUs beat every accelerator,
// "probably due to the low floating-point intensity of the CRC
// computation" -- the workload profile is pure integer work with a
// dependent per-byte chain.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dwarfs/common.hpp"

namespace eod::dwarfs {

class Crc final : public Dwarf {
 public:
  static constexpr std::size_t kPageBytes = 16384;

  /// Table 2, crc row: Phi = input buffer size in bytes.
  [[nodiscard]] static std::size_t buffer_bytes_for(ProblemSize s);

  /// Custom input size in bytes; setup(size) is the Table 2 preset
  /// configure(buffer_bytes_for(size)).
  void configure(std::size_t bytes);

  [[nodiscard]] std::string name() const override { return "crc"; }
  [[nodiscard]] std::string berkeley_dwarf() const override {
    return "Combinational Logic";
  }
  [[nodiscard]] std::string scale_parameter(ProblemSize s) const override {
    return std::to_string(buffer_bytes_for(s));
  }
  [[nodiscard]] std::size_t footprint_bytes(ProblemSize s) const override;

  void setup(ProblemSize size) override;
  void bind(xcl::Context& ctx, xcl::Queue& q) override;
  void run() override;
  void finish() override;
  [[nodiscard]] Validation validate() override;
  void unbind() override;

  using Dwarf::stream_trace;
  void stream_trace(sim::TraceWriter& out) const override;
  [[nodiscard]] std::size_t trace_size_hint() const override;

  /// Serial reference CRC32 of a byte range.
  [[nodiscard]] static std::uint32_t crc32_reference(
      std::span<const std::uint8_t> data);

  /// Per-page CRC words, byte-exact.
  [[nodiscard]] std::uint64_t result_signature() const override {
    return hash_result<std::uint32_t>(page_crcs_);
  }

 private:
  [[nodiscard]] std::size_t pages() const {
    return (data_.size() + kPageBytes - 1) / kPageBytes;
  }

  std::vector<std::uint8_t> data_;
  std::vector<std::uint32_t> page_crcs_;

  xcl::Queue* queue_ = nullptr;
  std::optional<xcl::Buffer> data_buf_;
  std::optional<xcl::Buffer> table_buf_;
  std::optional<xcl::Buffer> crc_buf_;
};

}  // namespace eod::dwarfs
