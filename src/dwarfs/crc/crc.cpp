#include "dwarfs/crc/crc.hpp"

#include <array>
#include <sstream>

#include "xcl/kernel.hpp"

namespace eod::dwarfs {

namespace {

constexpr std::uint32_t kPolynomial = 0xEDB88320u;  // reflected CRC-32

std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = build_table();
  return table;
}

// Slice-by-8 tables (the simd tier's formulation, DESIGN.md §13): table k
// advances a byte's contribution through k additional zero bytes, so eight
// single-byte chain steps collapse into eight independent lookups XORed
// together.  Pure GF(2) algebra over the same polynomial -- the resulting
// CRC is the identical integer, not merely close, which is what lets the
// simd body keep the bit-exactness contract without lane vectors.
std::array<std::array<std::uint32_t, 256>, 8> build_slice_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  t[0] = build_table();
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = t[k - 1][i];
      t[k][i] = (prev >> 8) ^ t[0][prev & 0xFFu];
    }
  }
  return t;
}

const std::array<std::array<std::uint32_t, 256>, 8>& slice_tables() {
  static const auto tables = build_slice_tables();
  return tables;
}

}  // namespace

std::size_t Crc::buffer_bytes_for(ProblemSize s) {
  switch (s) {
    case ProblemSize::kTiny:
      return 2000;
    case ProblemSize::kSmall:
      return 16000;
    case ProblemSize::kMedium:
      return 524000;
    case ProblemSize::kLarge:
      return 4194304;
  }
  return 0;
}

std::size_t Crc::footprint_bytes(ProblemSize s) const {
  const std::size_t bytes = buffer_bytes_for(s);
  const std::size_t n_pages = (bytes + kPageBytes - 1) / kPageBytes;
  return bytes + 256 * sizeof(std::uint32_t) +
         n_pages * sizeof(std::uint32_t);
}

std::uint32_t Crc::crc32_reference(std::span<const std::uint8_t> data) {
  const auto& table = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void Crc::setup(ProblemSize size) { configure(buffer_bytes_for(size)); }

void Crc::configure(std::size_t bytes) {
  require(bytes > 0, xcl::Status::kInvalidValue,
          "crc input must be non-empty");
  SplitMix64 rng(0x637263ull);  // "crc"
  data_.resize(bytes);
  for (auto& b : data_) b = static_cast<std::uint8_t>(rng.next());
  page_crcs_.assign(pages(), 0);
}

void Crc::bind(xcl::Context& ctx, xcl::Queue& q) {
  queue_ = &q;
  data_buf_.emplace(ctx, data_.size());
  table_buf_.emplace(ctx, 256 * sizeof(std::uint32_t));
  crc_buf_.emplace(ctx, page_crcs_.size() * sizeof(std::uint32_t));
  q.enqueue_write<std::uint8_t>(*data_buf_, data_);
  q.enqueue_write<std::uint32_t>(
      *table_buf_, std::span<const std::uint32_t>(crc_table()));
}

void Crc::run() {
  const std::size_t n_pages = pages();
  const std::size_t total = data_.size();
  auto bytes = data_buf_->access<const std::uint8_t>("data");
  auto table = table_buf_->access<const std::uint32_t>("table");
  auto out = crc_buf_->access<std::uint32_t>("page_crcs");

  xcl::Kernel kernel("crc_page", [=](xcl::WorkItem& it) {
    const std::size_t page = it.global_id(0);
    if (page >= n_pages) return;
    const std::size_t begin = page * kPageBytes;
    const std::size_t end = std::min(total, begin + kPageBytes);
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = begin; i < end; ++i) {
      c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
    }
    out[page] = c ^ 0xFFFFFFFFu;
  });

  // Span tier: a run of whole pages per call.  The per-byte chain stays
  // serial by construction; the win is dispatch amortization, not SIMD.
  kernel.span([=](std::size_t page_begin, std::size_t page_end) {
    const std::uint8_t* EOD_RESTRICT data = bytes.data();
    const std::uint32_t* EOD_RESTRICT tab = table.data();
    std::uint32_t* EOD_RESTRICT crcs = out.data();
    for (std::size_t page = page_begin,
                     last = std::min(page_end, n_pages);
         page < last; ++page) {
      const std::size_t begin = page * kPageBytes;
      const std::size_t end = std::min(total, begin + kPageBytes);
      std::uint32_t c = 0xFFFFFFFFu;
      for (std::size_t i = begin; i < end; ++i) {
        c = tab[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
      }
      crcs[page] = c ^ 0xFFFFFFFFu;
    }
  });

  // Simd tier: slice-by-8.  The scalar chain serializes one table lookup
  // per byte; slicing processes 8 bytes per step as eight independent
  // lookups the core can issue in parallel.  Byte assembly into the two
  // 32-bit words goes through explicit shifts, so the result is
  // endian-independent and equal to the byte-at-a-time chain bit for bit.
  kernel.simd([=](std::size_t page_begin, std::size_t page_end) {
    const std::uint8_t* EOD_RESTRICT data = bytes.data();
    const auto& t = slice_tables();
    std::uint32_t* EOD_RESTRICT crcs = out.data();
    for (std::size_t page = page_begin, last = std::min(page_end, n_pages);
         page < last; ++page) {
      const std::size_t begin = page * kPageBytes;
      const std::size_t end = std::min(total, begin + kPageBytes);
      std::uint32_t c = 0xFFFFFFFFu;
      std::size_t i = begin;
      for (; i + 8 <= end; i += 8) {
        const std::uint32_t lo =
            c ^ (static_cast<std::uint32_t>(data[i]) |
                 static_cast<std::uint32_t>(data[i + 1]) << 8 |
                 static_cast<std::uint32_t>(data[i + 2]) << 16 |
                 static_cast<std::uint32_t>(data[i + 3]) << 24);
        const std::uint32_t hi =
            static_cast<std::uint32_t>(data[i + 4]) |
            static_cast<std::uint32_t>(data[i + 5]) << 8 |
            static_cast<std::uint32_t>(data[i + 6]) << 16 |
            static_cast<std::uint32_t>(data[i + 7]) << 24;
        c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
            t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
            t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^
            t[0][hi >> 24];
      }
      for (; i < end; ++i) {
        c = t[0][(c ^ data[i]) & 0xFFu] ^ (c >> 8);
      }
      crcs[page] = c ^ 0xFFFFFFFFu;
    }
  });

  xcl::WorkloadProfile prof;
  // Per byte: xor, mask, table index, shift, xor plus loop bookkeeping.
  prof.int_ops = static_cast<double>(total) * 8.0;
  prof.bytes_read = static_cast<double>(total);  // the data streams once
  prof.bytes_written = static_cast<double>(n_pages) * sizeof(std::uint32_t);
  prof.working_set_bytes =
      static_cast<double>(total + 256 * sizeof(std::uint32_t) +
                          n_pages * sizeof(std::uint32_t));
  prof.pattern = xcl::AccessPattern::kStreaming;
  // The per-page byte chain is strictly dependent -- each table lookup
  // feeds the next -- and the chain's structure is the 1 KiB table.
  prof.dependent_accesses = static_cast<double>(total);
  prof.chain_working_set_bytes = 256 * sizeof(std::uint32_t);
  prof.parallel_fraction = 1.0;
  const std::size_t wg = std::min<std::size_t>(64, n_pages);
  const std::size_t global = (n_pages + wg - 1) / wg * wg;
  queue_->enqueue(kernel, xcl::NDRange(global, wg), prof);
}

void Crc::finish() {
  queue_->enqueue_read<std::uint32_t>(*crc_buf_, std::span(page_crcs_));
}

Validation Crc::validate() {
  Validation v;
  std::size_t bad = 0;
  const std::size_t n_pages = pages();
  for (std::size_t p = 0; p < n_pages; ++p) {
    const std::size_t begin = p * kPageBytes;
    const std::size_t end = std::min(data_.size(), begin + kPageBytes);
    const std::uint32_t want = crc32_reference(
        std::span(data_).subspan(begin, end - begin));
    if (page_crcs_[p] != want) ++bad;
  }
  v.error = static_cast<double>(bad);
  v.ok = bad == 0;
  std::ostringstream os;
  os << "crc: " << bad << " of " << n_pages
     << " page CRCs mismatch the serial reference";
  v.detail = os.str();
  return v;
}

void Crc::unbind() {
  crc_buf_.reset();
  table_buf_.reset();
  data_buf_.reset();
  queue_ = nullptr;
}

void Crc::stream_trace(sim::TraceWriter& out) const {
  const std::uint64_t data_base = 0x10000;
  const std::uint64_t table_base = data_base + data_.size();
  const std::uint64_t out_base = table_base + 256 * 4;
  // Program order of one work-item sweep over its page, pages in sequence.
  for (std::size_t p = 0; p < pages(); ++p) {
    const std::size_t begin = p * kPageBytes;
    const std::size_t end = std::min(data_.size(), begin + kPageBytes);
    for (std::size_t i = begin; i < end; ++i) {
      out.emit(data_base + i, 1, false);
      out.emit(table_base + (data_[i] & 0xFFu) * 4ull, 4, false);
    }
    out.emit(out_base + p * 4, 4, true);
  }
}

std::size_t Crc::trace_size_hint() const {
  return 2 * data_.size() + pages();
}

}  // namespace eod::dwarfs
