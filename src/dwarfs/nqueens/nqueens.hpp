// N-Queens -- the Backtrack & Branch-and-Bound dwarf.
//
// The application counts valid queen placements on an n x n board (Table 2:
// n = 18, single problem size -- "memory footprint scales very slowly ...
// thus it is significantly compute-bound and only one problem size is
// tested").  The search proceeds as iterated frontier expansion: the host
// keeps a frontier of partial placements (bitmask triples) and the kernel
// expands every frontier node by one row.  The measured kernel is one
// expansion step at a representative depth; kernels are highly divergent
// (each node has a different number of feasible columns), which is the
// characteristic the dwarf stresses on SIMD devices.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dwarfs/common.hpp"

namespace eod::dwarfs {

/// One partial placement: occupied-column and diagonal masks.
struct QueenNode {
  std::uint32_t cols = 0;
  std::uint32_t left_diag = 0;
  std::uint32_t right_diag = 0;
};

/// Full bitmask DFS count of n-queens solutions (serial reference; used by
/// tests against the known solution counts).
[[nodiscard]] std::uint64_t count_queens_host(unsigned n);

/// Expands `frontier` by one row on the host (serial reference for kernel
/// validation); appends children to `out` and returns the child count.
std::size_t expand_frontier_host(unsigned n,
                                 const std::vector<QueenNode>& frontier,
                                 std::vector<QueenNode>* out);

class Nqueens final : public Dwarf {
 public:
  static constexpr unsigned kBoard = 18;   // Table 2
  static constexpr unsigned kDepth = 4;    // frontier depth of the measured
                                           // expansion step

  /// Custom board size / expansion depth; setup() is the Table 2 preset
  /// configure(kBoard, kDepth).
  void configure(unsigned board, unsigned depth);

  [[nodiscard]] std::string name() const override { return "nqueens"; }
  [[nodiscard]] std::string berkeley_dwarf() const override {
    return "Backtrack & Branch and Bound";
  }
  [[nodiscard]] std::vector<ProblemSize> supported_sizes() const override {
    return {ProblemSize::kTiny};  // single problem size, as in the paper
  }
  [[nodiscard]] std::string scale_parameter(ProblemSize) const override {
    return std::to_string(kBoard);
  }
  [[nodiscard]] std::size_t footprint_bytes(ProblemSize) const override;
  [[nodiscard]] unsigned board() const noexcept { return board_; }

  void setup(ProblemSize size) override;
  void bind(xcl::Context& ctx, xcl::Queue& q) override;
  void run() override;
  void finish() override;
  [[nodiscard]] Validation validate() override;
  void unbind() override;

 private:
  unsigned board_ = kBoard;
  unsigned depth_ = kDepth;
  std::vector<QueenNode> frontier_;
  std::vector<QueenNode> children_;        // read back from the device
  std::vector<std::uint32_t> child_counts_;

  xcl::Queue* queue_ = nullptr;
  std::optional<xcl::Buffer> frontier_buf_;
  std::optional<xcl::Buffer> children_buf_;
  std::optional<xcl::Buffer> counts_buf_;
};

}  // namespace eod::dwarfs
