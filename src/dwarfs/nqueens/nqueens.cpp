#include "dwarfs/nqueens/nqueens.hpp"

#include <sstream>

#include "xcl/kernel.hpp"

namespace eod::dwarfs {

std::uint64_t count_queens_host(unsigned n) {
  const std::uint32_t full = (n >= 32) ? 0xFFFFFFFFu : ((1u << n) - 1);
  // Iterative bitmask DFS.
  struct Frame {
    std::uint32_t cols, ld, rd;
  };
  std::uint64_t solutions = 0;
  std::vector<Frame> stack;
  stack.push_back({0, 0, 0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    if (f.cols == full) {
      ++solutions;
      continue;
    }
    std::uint32_t avail = full & ~(f.cols | f.ld | f.rd);
    while (avail != 0) {
      const std::uint32_t bit = avail & (~avail + 1);
      avail ^= bit;
      stack.push_back({f.cols | bit, ((f.ld | bit) << 1) & full,
                       (f.rd | bit) >> 1});
    }
  }
  return solutions;
}

std::size_t expand_frontier_host(unsigned n,
                                 const std::vector<QueenNode>& frontier,
                                 std::vector<QueenNode>* out) {
  const std::uint32_t full = (1u << n) - 1;
  std::size_t count = 0;
  for (const QueenNode& f : frontier) {
    std::uint32_t avail = full & ~(f.cols | f.left_diag | f.right_diag);
    while (avail != 0) {
      const std::uint32_t bit = avail & (~avail + 1);
      avail ^= bit;
      if (out != nullptr) {
        out->push_back({f.cols | bit, ((f.left_diag | bit) << 1) & full,
                        (f.right_diag | bit) >> 1});
      }
      ++count;
    }
  }
  return count;
}

std::size_t Nqueens::footprint_bytes(ProblemSize) const {
  // Frontier + child slots (board per node) + per-node counts.  Computed
  // from the deterministic depth-depth_ frontier of the board.
  std::vector<QueenNode> frontier{{0, 0, 0}};
  for (unsigned d = 0; d < depth_; ++d) {
    std::vector<QueenNode> next;
    expand_frontier_host(board_, frontier, &next);
    frontier.swap(next);
  }
  return frontier.size() * sizeof(QueenNode) +
         frontier.size() * board_ * sizeof(QueenNode) +
         frontier.size() * sizeof(std::uint32_t);
}

void Nqueens::setup(ProblemSize) { configure(kBoard, kDepth); }

void Nqueens::configure(unsigned board, unsigned depth) {
  require(board >= 4 && board <= 28, xcl::Status::kInvalidValue,
          "nqueens board must be in [4, 28]");
  require(depth >= 1 && depth < board, xcl::Status::kInvalidValue,
          "nqueens expansion depth must be in [1, board)");
  board_ = board;
  depth_ = depth;
  frontier_.assign(1, {0, 0, 0});
  for (unsigned d = 0; d < depth_; ++d) {
    std::vector<QueenNode> next;
    expand_frontier_host(board_, frontier_, &next);
    frontier_.swap(next);
  }
  children_.assign(frontier_.size() * board_, {});
  child_counts_.assign(frontier_.size(), 0);
}

void Nqueens::bind(xcl::Context& ctx, xcl::Queue& q) {
  queue_ = &q;
  frontier_buf_.emplace(ctx, frontier_.size() * sizeof(QueenNode));
  children_buf_.emplace(ctx, children_.size() * sizeof(QueenNode));
  counts_buf_.emplace(ctx, child_counts_.size() * sizeof(std::uint32_t));
  q.enqueue_write<QueenNode>(*frontier_buf_, frontier_);
}

void Nqueens::run() {
  const std::size_t items = frontier_.size();
  const unsigned board = board_;
  const std::uint32_t full = (1u << board) - 1;
  auto frontier = frontier_buf_->access<const QueenNode>("frontier");
  auto children = children_buf_->access<QueenNode>("children");
  auto counts = counts_buf_->access<std::uint32_t>("child_counts");

  xcl::Kernel kernel("nqueens_expand", [=](xcl::WorkItem& it) {
    const std::size_t i = it.global_id(0);
    if (i >= items) return;
    const QueenNode f = frontier[i];
    std::uint32_t avail = full & ~(f.cols | f.left_diag | f.right_diag);
    std::uint32_t n_children = 0;
    while (avail != 0) {
      const std::uint32_t bit = avail & (~avail + 1);
      avail ^= bit;
      children[i * board + n_children] = {
          f.cols | bit, ((f.left_diag | bit) << 1) & full,
          (f.right_diag | bit) >> 1};
      ++n_children;
    }
    counts[i] = n_children;
  });

  xcl::WorkloadProfile prof;
  // ~8 mask ops per candidate column plus per-node bookkeeping.
  prof.int_ops = static_cast<double>(items) * (board * 8.0 + 12.0);
  prof.bytes_read = static_cast<double>(items) * sizeof(QueenNode);
  prof.bytes_written = static_cast<double>(items) *
                       (board * 0.7 * sizeof(QueenNode) +
                        sizeof(std::uint32_t));
  prof.working_set_bytes = static_cast<double>(footprint_bytes(
      ProblemSize::kTiny));
  prof.pattern = xcl::AccessPattern::kStreaming;
  // Every node has a different feasible-column set: heavy SIMD divergence,
  // the hallmark of backtracking search on wide devices.
  prof.branch_divergence = 0.5;
  const std::size_t wg = 64;
  queue_->enqueue(kernel, xcl::NDRange((items + wg - 1) / wg * wg, wg),
                  prof);
}

void Nqueens::finish() {
  queue_->enqueue_read<QueenNode>(*children_buf_, std::span(children_));
  queue_->enqueue_read<std::uint32_t>(*counts_buf_,
                                      std::span(child_counts_));
}

Validation Nqueens::validate() {
  std::vector<QueenNode> want;
  expand_frontier_host(board_, frontier_, &want);
  // Reassemble the device's compacted children in frontier order.
  std::vector<QueenNode> got;
  got.reserve(want.size());
  for (std::size_t i = 0; i < frontier_.size(); ++i) {
    for (std::uint32_t k = 0; k < child_counts_[i]; ++k) {
      got.push_back(children_[i * board_ + k]);
    }
  }
  Validation v;
  std::size_t bad = got.size() == want.size() ? 0 : want.size();
  if (bad == 0) {
    for (std::size_t i = 0; i < want.size(); ++i) {
      if (got[i].cols != want[i].cols ||
          got[i].left_diag != want[i].left_diag ||
          got[i].right_diag != want[i].right_diag) {
        ++bad;
      }
    }
  }
  v.error = static_cast<double>(bad);
  v.ok = bad == 0;
  std::ostringstream os;
  os << "nqueens: " << bad << " of " << want.size()
     << " expanded nodes mismatch (device " << got.size() << " nodes)";
  v.detail = os.str();
  return v;
}

void Nqueens::unbind() {
  counts_buf_.reset();
  children_buf_.reset();
  frontier_buf_.reset();
  queue_ = nullptr;
}

}  // namespace eod::dwarfs
