#include "dwarfs/hmm/hmm.hpp"

#include <cmath>

#include "xcl/kernel.hpp"

namespace eod::dwarfs {

HmmModel generate_hmm(unsigned states, unsigned symbols,
                      std::uint64_t seed) {
  HmmModel m;
  m.n_states = states;
  m.n_symbols = symbols;
  SplitMix64 rng(seed);
  auto fill_stochastic = [&rng](std::vector<float>& v, unsigned rows,
                                unsigned cols) {
    v.resize(std::size_t{rows} * cols);
    for (unsigned r = 0; r < rows; ++r) {
      float sum = 0.0f;
      for (unsigned c = 0; c < cols; ++c) {
        const float x = rng.uniform(0.1f, 1.0f);
        v[std::size_t{r} * cols + c] = x;
        sum += x;
      }
      for (unsigned c = 0; c < cols; ++c) v[std::size_t{r} * cols + c] /= sum;
    }
  };
  fill_stochastic(m.a, states, states);
  fill_stochastic(m.b, states, symbols);
  fill_stochastic(m.pi, 1, states);
  return m;
}

HmmModel baum_welch_reference(const HmmModel& model,
                              const std::vector<std::uint8_t>& obs,
                              double* log_likelihood) {
  const unsigned n = model.n_states;
  const unsigned s = model.n_symbols;
  const std::size_t t_len = obs.size();
  auto a = [&](unsigned i, unsigned j) {
    return static_cast<double>(model.a[std::size_t{i} * n + j]);
  };
  auto b = [&](unsigned j, unsigned o) {
    return static_cast<double>(model.b[std::size_t{j} * s + o]);
  };

  std::vector<double> alpha(t_len * n), beta(t_len * n), gamma(t_len * n);
  double ll = 0.0;
  // Scaled forward.
  {
    double sum = 0.0;
    for (unsigned i = 0; i < n; ++i) {
      alpha[i] = model.pi[i] * b(i, obs[0]);
      sum += alpha[i];
    }
    ll += std::log(sum);
    for (unsigned i = 0; i < n; ++i) alpha[i] /= sum;
  }
  for (std::size_t t = 1; t < t_len; ++t) {
    double sum = 0.0;
    for (unsigned j = 0; j < n; ++j) {
      double acc = 0.0;
      for (unsigned i = 0; i < n; ++i) acc += alpha[(t - 1) * n + i] * a(i, j);
      alpha[t * n + j] = acc * b(j, obs[t]);
      sum += alpha[t * n + j];
    }
    ll += std::log(sum);
    for (unsigned j = 0; j < n; ++j) alpha[t * n + j] /= sum;
  }
  // Scaled backward.
  for (unsigned i = 0; i < n; ++i) beta[(t_len - 1) * n + i] = 1.0;
  for (std::size_t t = t_len - 1; t-- > 0;) {
    double sum = 0.0;
    for (unsigned i = 0; i < n; ++i) {
      double acc = 0.0;
      for (unsigned j = 0; j < n; ++j) {
        acc += a(i, j) * b(j, obs[t + 1]) * beta[(t + 1) * n + j];
      }
      beta[t * n + i] = acc;
      sum += acc;
    }
    for (unsigned i = 0; i < n; ++i) beta[t * n + i] /= sum;
  }
  // Gamma with per-step normalisation (scale factors cancel).
  for (std::size_t t = 0; t < t_len; ++t) {
    double denom = 0.0;
    for (unsigned i = 0; i < n; ++i) {
      denom += alpha[t * n + i] * beta[t * n + i];
    }
    for (unsigned i = 0; i < n; ++i) {
      gamma[t * n + i] = alpha[t * n + i] * beta[t * n + i] / denom;
    }
  }

  HmmModel out = model;
  // A re-estimation.
  for (unsigned i = 0; i < n; ++i) {
    double gsum = 0.0;
    for (std::size_t t = 0; t + 1 < t_len; ++t) gsum += gamma[t * n + i];
    for (unsigned j = 0; j < n; ++j) {
      double xsum = 0.0;
      for (std::size_t t = 0; t + 1 < t_len; ++t) {
        double xd = 0.0;
        for (unsigned ii = 0; ii < n; ++ii) {
          for (unsigned jj = 0; jj < n; ++jj) {
            xd += alpha[t * n + ii] * a(ii, jj) * b(jj, obs[t + 1]) *
                  beta[(t + 1) * n + jj];
          }
        }
        xsum += alpha[t * n + i] * a(i, j) * b(j, obs[t + 1]) *
                beta[(t + 1) * n + j] / xd;
      }
      out.a[std::size_t{i} * n + j] = static_cast<float>(xsum / gsum);
    }
  }
  // B re-estimation.
  for (unsigned j = 0; j < n; ++j) {
    double gsum = 0.0;
    for (std::size_t t = 0; t < t_len; ++t) gsum += gamma[t * n + j];
    for (unsigned sym = 0; sym < s; ++sym) {
      double num = 0.0;
      for (std::size_t t = 0; t < t_len; ++t) {
        if (obs[t] == sym) num += gamma[t * n + j];
      }
      out.b[std::size_t{j} * s + sym] = static_cast<float>(num / gsum);
    }
  }
  if (log_likelihood != nullptr) *log_likelihood = ll;
  return out;
}

Hmm::Params Hmm::params_for(ProblemSize s) {
  switch (s) {
    case ProblemSize::kTiny:
      return {8, 1};
    case ProblemSize::kSmall:
      return {900, 1};
    case ProblemSize::kMedium:
      return {1012, 1024};
    case ProblemSize::kLarge:
      return {2048, 2048};
  }
  return {};
}

std::size_t Hmm::footprint_bytes(ProblemSize s) const {
  const Params p = params_for(s);
  const std::size_t n = p.states;
  const std::size_t sym = p.symbols;
  return (2 * n * n + 2 * n * sym + n) * sizeof(float) +  // A, B, new copies, pi
         3 * kSeqLen * n * sizeof(float) +                // alpha, beta, gamma
         2 * kSeqLen * sizeof(float) +                    // denominators
         kSeqLen * sizeof(std::int32_t);                  // observations
}

void Hmm::setup(ProblemSize size) {
  configure(params_for(size), kSeqLen);
}

void Hmm::configure(const Params& params, std::size_t seq_len) {
  require(params.states >= 2, xcl::Status::kInvalidValue,
          "hmm needs at least 2 states");
  require(params.symbols >= 1, xcl::Status::kInvalidValue,
          "hmm needs at least 1 symbol");
  require(seq_len >= 2, xcl::Status::kInvalidValue,
          "hmm needs a sequence of at least 2 observations");
  params_ = params;
  seq_len_ = seq_len;
  model_ = generate_hmm(params_.states, params_.symbols, 0x686d6dull);
  SplitMix64 rng(0x686d6d02ull);
  obs_.resize(seq_len_);
  for (auto& o : obs_) {
    o = static_cast<std::uint8_t>(rng.below(params_.symbols));
  }
  new_a_.assign(model_.a.size(), 0.0f);
  new_b_.assign(model_.b.size(), 0.0f);
}

void Hmm::bind(xcl::Context& ctx, xcl::Queue& q) {
  queue_ = &q;
  const std::size_t n = params_.states;
  const std::size_t s = params_.symbols;
  a_buf_.emplace(ctx, n * n * sizeof(float));
  b_buf_.emplace(ctx, n * s * sizeof(float));
  pi_buf_.emplace(ctx, n * sizeof(float));
  obs_buf_.emplace(ctx, seq_len_ * sizeof(std::int32_t));
  alpha_buf_.emplace(ctx, seq_len_ * n * sizeof(float));
  beta_buf_.emplace(ctx, seq_len_ * n * sizeof(float));
  gamma_buf_.emplace(ctx, seq_len_ * n * sizeof(float));
  denom_buf_.emplace(ctx, seq_len_ * sizeof(float));
  xi_denom_buf_.emplace(ctx, seq_len_ * sizeof(float));
  new_a_buf_.emplace(ctx, n * n * sizeof(float));
  new_b_buf_.emplace(ctx, n * s * sizeof(float));

  q.enqueue_write<float>(*a_buf_, model_.a);
  q.enqueue_write<float>(*b_buf_, model_.b);
  q.enqueue_write<float>(*pi_buf_, model_.pi);
  std::vector<std::int32_t> obs32(obs_.begin(), obs_.end());
  q.enqueue_write<std::int32_t>(*obs_buf_, obs32);
}

void Hmm::run() {
  const unsigned n = params_.states;
  const unsigned s = params_.symbols;
  const std::size_t t_len = seq_len_;
  auto a = a_buf_->access<const float>("a");
  auto b = b_buf_->access<const float>("b");
  auto pi = pi_buf_->access<const float>("pi");
  auto obs = obs_buf_->access<const std::int32_t>("obs");
  auto alpha = alpha_buf_->access<float>("alpha");
  auto beta = beta_buf_->access<float>("beta");
  auto gamma = gamma_buf_->access<float>("gamma");
  auto denom = denom_buf_->access<float>("denom");
  auto xi_denom = xi_denom_buf_->access<float>("xi_denom");
  auto new_a = new_a_buf_->access<float>("new_a");
  auto new_b = new_b_buf_->access<float>("new_b");

  // Per-step workload: an N x N recurrence plus the normalisation round.
  xcl::WorkloadProfile step_prof;
  step_prof.flops = static_cast<double>(n) * n * 2 + 3.0 * n;
  step_prof.int_ops = static_cast<double>(n) * n;
  step_prof.bytes_read =
      static_cast<double>(n) * n * sizeof(float) + 2.0 * n * sizeof(float);
  step_prof.bytes_written = static_cast<double>(n) * sizeof(float);
  step_prof.working_set_bytes =
      static_cast<double>(footprint_bytes(ProblemSize::kTiny));
  step_prof.pattern = xcl::AccessPattern::kStreaming;

  // Forward sweep: one normalising work-group kernel per time step.
  for (std::size_t t = 0; t < t_len; ++t) {
    xcl::Kernel fwd("hmm_forward", [=](xcl::WorkItem& it) {
      const std::size_t j = it.local_id(0);
      auto sum = it.local<float>(0, 1);
      float v;
      if (t == 0) {
        v = pi[j] * b[j * s + static_cast<unsigned>(obs[0])];
      } else {
        float acc = 0.0f;
        for (unsigned i = 0; i < n; ++i) {
          acc += alpha[(t - 1) * n + i] * a[i * n + j];
        }
        v = acc * b[j * s + static_cast<unsigned>(obs[t])];
      }
      alpha[t * n + j] = v;
      it.barrier();
      if (j == 0) {
        float total = 0.0f;
        for (unsigned i = 0; i < n; ++i) total += alpha[t * n + i];
        sum[0] = total;
      }
      it.barrier();
      alpha[t * n + j] /= sum[0];
    });
    fwd.uses_barriers();
    queue_->enqueue(fwd, xcl::NDRange(n, n), step_prof);
  }

  // Backward sweep.
  for (std::size_t t = t_len; t-- > 0;) {
    xcl::Kernel bwd("hmm_backward", [=](xcl::WorkItem& it) {
      const std::size_t i = it.local_id(0);
      auto sum = it.local<float>(0, 1);
      float v;
      if (t == t_len - 1) {
        v = 1.0f;
      } else {
        float acc = 0.0f;
        for (unsigned j = 0; j < n; ++j) {
          acc += a[i * n + j] * b[j * s + static_cast<unsigned>(obs[t + 1])] *
                 beta[(t + 1) * n + j];
        }
        v = acc;
      }
      beta[t * n + i] = v;
      it.barrier();
      if (i == 0) {
        float total = 0.0f;
        for (unsigned j = 0; j < n; ++j) total += beta[t * n + j];
        sum[0] = total;
      }
      it.barrier();
      beta[t * n + i] /= sum[0];
    });
    bwd.uses_barriers();
    queue_->enqueue(bwd, xcl::NDRange(n, n), step_prof);
  }

  // Gamma and the per-step denominators.
  xcl::Kernel gam("hmm_gamma", [=](xcl::WorkItem& it) {
    const std::size_t t = it.global_id(0);
    if (t >= t_len) return;
    float d = 0.0f;
    for (unsigned i = 0; i < n; ++i) d += alpha[t * n + i] * beta[t * n + i];
    denom[t] = d;
    for (unsigned i = 0; i < n; ++i) {
      gamma[t * n + i] = alpha[t * n + i] * beta[t * n + i] / d;
    }
    if (t + 1 < t_len) {
      float xd = 0.0f;
      for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = 0; j < n; ++j) {
          xd += alpha[t * n + i] * a[i * n + j] *
                b[j * s + static_cast<unsigned>(obs[t + 1])] *
                beta[(t + 1) * n + j];
        }
      }
      xi_denom[t] = xd;
    }
  });
  xcl::WorkloadProfile gam_prof = step_prof;
  gam_prof.flops = static_cast<double>(t_len) * n * n * 4;
  queue_->enqueue(gam, xcl::NDRange(t_len, std::min<std::size_t>(64, t_len)),
                  gam_prof);

  // A re-estimation: one work-item per (i, j).
  xcl::Kernel upd_a("hmm_update_a", [=](xcl::WorkItem& it) {
    const std::size_t ij = it.global_id(0);
    if (ij >= std::size_t{n} * n) return;
    const unsigned i = static_cast<unsigned>(ij / n);
    const unsigned j = static_cast<unsigned>(ij % n);
    float xsum = 0.0f;
    float gsum = 0.0f;
    for (std::size_t t = 0; t + 1 < t_len; ++t) {
      xsum += alpha[t * n + i] * a[i * n + j] *
              b[j * s + static_cast<unsigned>(obs[t + 1])] *
              beta[(t + 1) * n + j] / xi_denom[t];
      gsum += gamma[t * n + i];
    }
    new_a[ij] = xsum / gsum;
  });
  xcl::WorkloadProfile ua_prof = step_prof;
  ua_prof.flops = static_cast<double>(n) * n * t_len * 6;
  queue_->enqueue(upd_a,
                  xcl::NDRange(std::size_t{n} * n,
                               std::min<std::size_t>(64, std::size_t{n} * n)),
                  ua_prof);

  // B re-estimation: one work-item per (j, sym).
  xcl::Kernel upd_b("hmm_update_b", [=](xcl::WorkItem& it) {
    const std::size_t js = it.global_id(0);
    if (js >= std::size_t{n} * s) return;
    const unsigned j = static_cast<unsigned>(js / s);
    const unsigned sym = static_cast<unsigned>(js % s);
    float num = 0.0f;
    float gsum = 0.0f;
    for (std::size_t t = 0; t < t_len; ++t) {
      const float g = gamma[t * n + j];
      gsum += g;
      if (static_cast<unsigned>(obs[t]) == sym) num += g;
    }
    new_b[js] = num / gsum;
  });
  xcl::WorkloadProfile ub_prof = step_prof;
  ub_prof.flops = static_cast<double>(n) * s * t_len * 2;
  queue_->enqueue(upd_b,
                  xcl::NDRange(std::size_t{n} * s,
                               std::min<std::size_t>(64, std::size_t{n} * s)),
                  ub_prof);
}

void Hmm::finish() {
  queue_->enqueue_read<float>(*new_a_buf_, std::span(new_a_));
  queue_->enqueue_read<float>(*new_b_buf_, std::span(new_b_));
}

Validation Hmm::validate() {
  const HmmModel want = baum_welch_reference(model_, obs_);
  const Validation va = validate_norm(new_a_, want.a, 1e-4, "hmm A update");
  const Validation vb = validate_norm(new_b_, want.b, 1e-4, "hmm B update");
  Validation v;
  v.ok = va.ok && vb.ok;
  v.error = std::max(va.error, vb.error);
  v.detail = va.detail + "; " + vb.detail;
  return v;
}

void Hmm::unbind() {
  new_b_buf_.reset();
  new_a_buf_.reset();
  xi_denom_buf_.reset();
  denom_buf_.reset();
  gamma_buf_.reset();
  beta_buf_.reset();
  alpha_buf_.reset();
  obs_buf_.reset();
  pi_buf_.reset();
  b_buf_.reset();
  a_buf_.reset();
  queue_ = nullptr;
}

}  // namespace eod::dwarfs
