// Baum-Welch HMM training -- the Graphical Models dwarf.
//
// One Baum-Welch iteration: scaled forward and backward sweeps (one
// work-group kernel per time step, normalising through barriers), then
// gamma / xi accumulation and the A/B re-estimation kernels.  Table 2 sets
// (N states, S symbols) per class; as in the paper, "validation of the
// correctness of results has not occurred apart from over the tiny problem
// size, as such, it is the only size examined in the evaluation" -- this
// implementation validates tiny against a double-precision serial reference
// and restricts supported_sizes() to tiny.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dwarfs/common.hpp"

namespace eod::dwarfs {

/// A discrete HMM: N states, S symbols, row-stochastic A (NxN), B (NxS),
/// initial distribution pi.
struct HmmModel {
  unsigned n_states = 0;
  unsigned n_symbols = 0;
  std::vector<float> a;   // N x N
  std::vector<float> b;   // N x S
  std::vector<float> pi;  // N
};

/// Deterministically generates a random row-stochastic model.
[[nodiscard]] HmmModel generate_hmm(unsigned states, unsigned symbols,
                                    std::uint64_t seed);

/// Serial double-precision Baum-Welch single iteration; returns the updated
/// model and (optionally) the observation log-likelihood under the input
/// model.
[[nodiscard]] HmmModel baum_welch_reference(
    const HmmModel& model, const std::vector<std::uint8_t>& obs,
    double* log_likelihood = nullptr);

class Hmm final : public Dwarf {
 public:
  static constexpr std::size_t kSeqLen = 64;  // observation sequence length

  struct Params {
    unsigned states = 0;
    unsigned symbols = 0;
  };
  /// Table 2, hmm row: (Phi1, Phi2) = (states, symbols).
  [[nodiscard]] static Params params_for(ProblemSize s);

  /// Custom model shape; setup(size) is the Table 2 preset
  /// configure(params_for(size), kSeqLen).  States must fit a work-group.
  void configure(const Params& params, std::size_t seq_len);

  [[nodiscard]] std::string name() const override { return "hmm"; }
  [[nodiscard]] std::string berkeley_dwarf() const override {
    return "Graphical Models";
  }
  [[nodiscard]] std::vector<ProblemSize> supported_sizes() const override {
    return {ProblemSize::kTiny};
  }
  [[nodiscard]] std::string scale_parameter(ProblemSize s) const override {
    const Params p = params_for(s);
    return std::to_string(p.states) + "," + std::to_string(p.symbols);
  }
  [[nodiscard]] std::size_t footprint_bytes(ProblemSize s) const override;

  void setup(ProblemSize size) override;
  void bind(xcl::Context& ctx, xcl::Queue& q) override;
  void run() override;
  void finish() override;
  [[nodiscard]] Validation validate() override;
  void unbind() override;

 private:
  Params params_;
  std::size_t seq_len_ = kSeqLen;
  HmmModel model_;
  std::vector<std::uint8_t> obs_;
  std::vector<float> new_a_;
  std::vector<float> new_b_;

  xcl::Queue* queue_ = nullptr;
  std::optional<xcl::Buffer> a_buf_, b_buf_, pi_buf_, obs_buf_;
  std::optional<xcl::Buffer> alpha_buf_, beta_buf_, gamma_buf_;
  std::optional<xcl::Buffer> denom_buf_, xi_denom_buf_;
  std::optional<xcl::Buffer> new_a_buf_, new_b_buf_;
};

}  // namespace eod::dwarfs
