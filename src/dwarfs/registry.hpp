// Factory and enumeration for the eleven benchmarks of the suite.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dwarfs/common.hpp"

namespace eod::dwarfs {

/// The benchmark names in the order of the paper's Table 2.
[[nodiscard]] const std::vector<std::string>& benchmark_names();

/// Extension benchmarks beyond the paper's Table 2 (the continuous wavelet
/// transform the paper planned to add, §2).
[[nodiscard]] const std::vector<std::string>& extension_names();

/// Creates a benchmark by name; throws std::invalid_argument if unknown.
[[nodiscard]] std::unique_ptr<Dwarf> create_dwarf(const std::string& name);

/// Creates every benchmark in Table 2 order.
[[nodiscard]] std::vector<std::unique_ptr<Dwarf>> create_all_dwarfs();

}  // namespace eod::dwarfs
