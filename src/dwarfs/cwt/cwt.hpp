// Continuous wavelet transform -- the extension benchmark the paper
// planned: "we plan to add a continuous wavelet transform code" (§2).
//
// Morlet CWT of a real 1-D signal, computed directly in the time domain:
// one work-item per (scale, translation) coefficient convolving the signal
// with the scaled/shifted wavelet.  Spectral Methods dwarf, compute-heavy
// (O(N * S * support)), with a scale-dependent inner-loop length that adds
// mild divergence -- a deliberately different balance point from fft/dwt.
//
// Not part of the paper's Table 2 suite: registered as an extension
// benchmark (see dwarfs::extension_names()).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "dwarfs/common.hpp"

namespace eod::dwarfs {

class Cwt final : public Dwarf {
 public:
  static constexpr unsigned kScales = 32;  // octave-spaced analysis scales

  /// Signal lengths per size class (footprint = signal + S x N
  /// coefficients; tiny fits L1 like the rest of the suite).
  [[nodiscard]] static std::size_t length_for(ProblemSize s);

  /// Custom signal length / scale count.
  void configure(std::size_t n, unsigned scales = kScales);

  [[nodiscard]] std::string name() const override { return "cwt"; }
  [[nodiscard]] std::string berkeley_dwarf() const override {
    return "Spectral Methods";
  }
  [[nodiscard]] std::string scale_parameter(ProblemSize s) const override {
    return std::to_string(length_for(s));
  }
  /// signal N + |W| magnitude plane S x N, floats.
  [[nodiscard]] std::size_t footprint_bytes(ProblemSize s) const override;

  void setup(ProblemSize size) override;
  void bind(xcl::Context& ctx, xcl::Queue& q) override;
  void run() override;
  void finish() override;
  [[nodiscard]] Validation validate() override;
  void unbind() override;

  /// |W(scale, t)| magnitudes (valid after finish()).
  [[nodiscard]] const std::vector<float>& magnitudes() const noexcept {
    return magnitude_;
  }

  /// Magnitude plane, byte-exact.
  [[nodiscard]] std::uint64_t result_signature() const override {
    return hash_result<float>(magnitude_);
  }

 private:
  std::size_t n_ = 0;
  unsigned scales_ = kScales;
  std::vector<float> signal_;
  std::vector<float> magnitude_;  // scales_ x n_

  xcl::Queue* queue_ = nullptr;
  std::optional<xcl::Buffer> signal_buf_;
  std::optional<xcl::Buffer> mag_buf_;
};

}  // namespace eod::dwarfs
