#include "dwarfs/cwt/cwt.hpp"

#include <cmath>

#include "xcl/kernel.hpp"

namespace eod::dwarfs {

namespace {

constexpr double kOmega0 = 5.0;    // Morlet centre frequency
constexpr double kSupport = 4.0;   // Gaussian support radius in u = t/s

/// Analysis scale j: quarter-octave spacing.
double scale_of(unsigned j) { return std::pow(2.0, j / 4.0); }

}  // namespace

std::size_t Cwt::length_for(ProblemSize s) {
  // footprint = 4 * N * (1 + kScales) bytes = 132 N: sized to the Skylake
  // hierarchy like the rest of the suite.
  switch (s) {
    case ProblemSize::kTiny:
      return 240;      // 31.0 KiB <= L1
    case ProblemSize::kSmall:
      return 1984;     // 255.8 KiB <= L2
    case ProblemSize::kMedium:
      return 63488;    // 8.0 MiB <= L3
    case ProblemSize::kLarge:
      return 262144;   // 33 MiB, out of cache
  }
  return 0;
}

std::size_t Cwt::footprint_bytes(ProblemSize s) const {
  const std::size_t n = length_for(s);
  return n * sizeof(float) + std::size_t{kScales} * n * sizeof(float);
}

void Cwt::setup(ProblemSize size) { configure(length_for(size), kScales); }

void Cwt::configure(std::size_t n, unsigned scales) {
  require(n >= 16, xcl::Status::kInvalidValue,
          "cwt signal must have at least 16 samples");
  require(scales >= 1, xcl::Status::kInvalidValue,
          "cwt needs at least one scale");
  n_ = n;
  scales_ = scales;
  // Test signal: two chirping tones plus noise -- structured content at
  // several scales, like the suite's other generated inputs.
  SplitMix64 rng(0x637774ull);  // "cwt"
  signal_.resize(n_);
  for (std::size_t t = 0; t < n_; ++t) {
    const double x = static_cast<double>(t);
    signal_[t] = static_cast<float>(
        std::sin(2.0 * M_PI * x / 16.0) +
        0.5 * std::sin(2.0 * M_PI * x / 64.0 + 0.1) +
        0.1 * (rng.uniform() - 0.5));
  }
  magnitude_.assign(std::size_t{scales_} * n_, 0.0f);
}

void Cwt::bind(xcl::Context& ctx, xcl::Queue& q) {
  queue_ = &q;
  signal_buf_.emplace(ctx, signal_.size() * sizeof(float));
  mag_buf_.emplace(ctx, magnitude_.size() * sizeof(float));
  q.enqueue_write<float>(*signal_buf_, signal_);
}

void Cwt::run() {
  const std::size_t n = n_;
  const unsigned scales = scales_;
  auto x = signal_buf_->access<const float>("signal");
  auto w = mag_buf_->access<float>("magnitude");

  xcl::Kernel kernel("cwt_morlet", [=](xcl::WorkItem& it) {
    const std::size_t idx = it.global_id(0);
    if (idx >= std::size_t{scales} * n) return;
    const unsigned j = static_cast<unsigned>(idx / n);
    const std::size_t b = idx % n;
    const float s = static_cast<float>(scale_of(j));
    const auto radius = static_cast<std::ptrdiff_t>(kSupport * s);
    const auto bb = static_cast<std::ptrdiff_t>(b);
    const auto nn = static_cast<std::ptrdiff_t>(n);
    float re = 0.0f;
    float im = 0.0f;
    for (std::ptrdiff_t t = std::max<std::ptrdiff_t>(0, bb - radius);
         t <= std::min(nn - 1, bb + radius); ++t) {
      const float u = static_cast<float>(t - bb) / s;
      const float g = std::exp(-0.5f * u * u);
      re += x[static_cast<std::size_t>(t)] * g *
            std::cos(static_cast<float>(kOmega0) * u);
      im -= x[static_cast<std::size_t>(t)] * g *
            std::sin(static_cast<float>(kOmega0) * u);
    }
    const float norm = 1.0f / std::sqrt(s);
    w[idx] = norm * std::sqrt(re * re + im * im);
  });

  // Span tier: a run of (scale, translation) coefficients per call.  Most
  // groups sit inside one scale row, so the scale-dependent radius is
  // loop-invariant in practice and the tap loop vectorizes.
  kernel.span([=](std::size_t begin, std::size_t end) {
    const float* EOD_RESTRICT xs = x.data();
    float* EOD_RESTRICT ws = w.data();
    const std::size_t total = std::size_t{scales} * n;
    for (std::size_t idx = begin, last = std::min(end, total); idx < last;
         ++idx) {
      const unsigned j = static_cast<unsigned>(idx / n);
      const std::size_t b = idx % n;
      const float s = static_cast<float>(scale_of(j));
      const auto radius = static_cast<std::ptrdiff_t>(kSupport * s);
      const auto bb = static_cast<std::ptrdiff_t>(b);
      const auto nn = static_cast<std::ptrdiff_t>(n);
      float re = 0.0f;
      float im = 0.0f;
      for (std::ptrdiff_t t = std::max<std::ptrdiff_t>(0, bb - radius);
           t <= std::min(nn - 1, bb + radius); ++t) {
        const float u = static_cast<float>(t - bb) / s;
        const float g = std::exp(-0.5f * u * u);
        re += xs[static_cast<std::size_t>(t)] * g *
              std::cos(static_cast<float>(kOmega0) * u);
        im -= xs[static_cast<std::size_t>(t)] * g *
              std::sin(static_cast<float>(kOmega0) * u);
      }
      const float norm = 1.0f / std::sqrt(s);
      ws[idx] = norm * std::sqrt(re * re + im * im);
    }
  });

  // Total taps: sum over scales of N * (2 * support * s + 1).
  double taps = 0.0;
  for (unsigned j = 0; j < scales; ++j) {
    taps += static_cast<double>(n) * (2.0 * kSupport * scale_of(j) + 1.0);
  }
  xcl::WorkloadProfile prof;
  prof.flops = taps * 12.0;  // exp + sin/cos pair + MACs per tap
  prof.int_ops = taps * 2.0;
  // Sliding windows reuse the signal heavily (reuse ~ window length);
  // requested traffic is the small uncached fraction plus the output.
  prof.bytes_read = taps * sizeof(float) * 0.02 +
                    static_cast<double>(scales) * n * sizeof(float);
  prof.bytes_written =
      static_cast<double>(scales) * n * sizeof(float);
  prof.working_set_bytes =
      static_cast<double>(n) * sizeof(float) * (1.0 + scales);
  prof.pattern = xcl::AccessPattern::kStencil;  // sliding windows
  // Inner-loop length varies ~64x across scales: divergence across a SIMD
  // group that spans scale boundaries (mild, since rows are contiguous).
  prof.branch_divergence = 0.15;
  const std::size_t total = std::size_t{scales} * n;
  const std::size_t wg = 64;
  queue_->enqueue(kernel, xcl::NDRange((total + wg - 1) / wg * wg, wg),
                  prof);
}

void Cwt::finish() {
  queue_->enqueue_read<float>(*mag_buf_, std::span(magnitude_));
}

Validation Cwt::validate() {
  std::vector<float> want(magnitude_.size());
  for (unsigned j = 0; j < scales_; ++j) {
    const double s = scale_of(j);
    const auto radius = static_cast<std::ptrdiff_t>(kSupport * s);
    for (std::size_t b = 0; b < n_; ++b) {
      double re = 0.0;
      double im = 0.0;
      const auto bb = static_cast<std::ptrdiff_t>(b);
      const auto nn = static_cast<std::ptrdiff_t>(n_);
      for (std::ptrdiff_t t = std::max<std::ptrdiff_t>(0, bb - radius);
           t <= std::min(nn - 1, bb + radius); ++t) {
        const double u = static_cast<double>(t - bb) / s;
        const double g = std::exp(-0.5 * u * u);
        re += signal_[static_cast<std::size_t>(t)] * g *
              std::cos(kOmega0 * u);
        im -= signal_[static_cast<std::size_t>(t)] * g *
              std::sin(kOmega0 * u);
      }
      want[std::size_t{j} * n_ + b] = static_cast<float>(
          std::sqrt(re * re + im * im) / std::sqrt(s));
    }
  }
  return validate_norm(magnitude_, want, 1e-4, "cwt Morlet magnitudes");
}

void Cwt::unbind() {
  mag_buf_.reset();
  signal_buf_.reset();
  queue_ = nullptr;
}

}  // namespace eod::dwarfs
