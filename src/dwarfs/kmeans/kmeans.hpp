// k-means clustering -- the MapReduce dwarf (§4.4.1).
//
// The paper's version generates a random distribution of points (rather
// than loading a file) "to more fairly evaluate cache performance", fixes
// the cluster count at 5, and scales the point count Pn per problem size
// with Fn = 26 features (Table 2/3: -g -f 26 -p Phi).  The kernel assigns
// each point to its nearest centroid; centroid relocation happens on the
// host, as in OpenDwarfs.  For measurement reproducibility the benchmark
// runs a fixed number of assign/update rounds per iteration instead of a
// data-dependent convergence loop.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dwarfs/common.hpp"

namespace eod::dwarfs {

class KMeans final : public Dwarf {
 public:
  struct Params {
    std::size_t points = 0;
    unsigned features = 26;
    unsigned clusters = 5;
    unsigned rounds = 10;  ///< assign/update rounds per benchmark iteration
  };
  [[nodiscard]] static Params params_for(ProblemSize s);

  /// Custom problem configuration (the suite's "flexibility of
  /// configuration including problem sizes"); setup(size) is the Table 2
  /// preset configure(params_for(size)).
  void configure(const Params& params);

  [[nodiscard]] std::string name() const override { return "kmeans"; }
  [[nodiscard]] std::string berkeley_dwarf() const override {
    return "MapReduce";
  }
  [[nodiscard]] std::string scale_parameter(ProblemSize s) const override;
  [[nodiscard]] std::size_t footprint_bytes(ProblemSize s) const override;

  void setup(ProblemSize size) override;
  void bind(xcl::Context& ctx, xcl::Queue& q) override;
  void run() override;
  void finish() override;
  [[nodiscard]] Validation validate() override;
  void unbind() override;

  using Dwarf::stream_trace;
  void stream_trace(sim::TraceWriter& out) const override;
  [[nodiscard]] std::size_t trace_size_hint() const override;

  /// Working-set equation (1) of the paper, in bytes:
  /// size(feature) + size(membership) + size(cluster).
  [[nodiscard]] static std::size_t working_set_bytes(std::size_t points,
                                                     unsigned features,
                                                     unsigned clusters);

  /// Final membership assignment, byte-exact.
  [[nodiscard]] std::uint64_t result_signature() const override {
    return hash_result<std::int32_t>(membership_);
  }

 private:
  /// Enqueues the assign kernel over points [begin, end) after `wait`,
  /// returning its event.  run() splits the point range in two so each
  /// half's membership read-back overlaps the other half's compute on an
  /// out-of-order queue (double-buffered write-back, DESIGN.md §12).
  xcl::Event enqueue_assign(std::size_t begin, std::size_t end,
                            std::span<const xcl::Event> wait);
  void host_update_centroids();

  Params params_;
  std::vector<float> features_;      // Pn x Fn, row-major
  std::vector<float> centroids_;     // Cn x Fn (current host copy)
  std::vector<std::int32_t> membership_;

  xcl::Context* ctx_ = nullptr;
  xcl::Queue* queue_ = nullptr;
  /// Last centroid upload; each round's assign kernels wait on it, which
  /// is the only cross-round edge the dependency graph needs.
  xcl::Event centroid_write_;
  std::optional<xcl::Buffer> feature_buf_;
  std::optional<xcl::Buffer> cluster_buf_;
  std::optional<xcl::Buffer> membership_buf_;
};

}  // namespace eod::dwarfs
