#include "dwarfs/kmeans/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "xcl/kernel.hpp"
#include "xcl/simd.hpp"

namespace eod::dwarfs {

namespace {
constexpr std::uint64_t kSeed = 0x6b6d65616e73ull;  // "kmeans"
}  // namespace

KMeans::Params KMeans::params_for(ProblemSize s) {
  // Table 2, kmeans row: Phi = number of points; 26 features (Table 3),
  // 5 clusters (§4.4.1).
  Params p;
  switch (s) {
    case ProblemSize::kTiny:
      p.points = 256;
      break;
    case ProblemSize::kSmall:
      p.points = 2048;
      break;
    case ProblemSize::kMedium:
      p.points = 65600;
      break;
    case ProblemSize::kLarge:
      p.points = 131072;
      break;
  }
  return p;
}

std::string KMeans::scale_parameter(ProblemSize s) const {
  return std::to_string(params_for(s).points);
}

std::size_t KMeans::working_set_bytes(std::size_t points, unsigned features,
                                      unsigned clusters) {
  // Equation (1): size(feature) + size(membership) + size(cluster).
  return points * features * sizeof(float) + points * sizeof(std::int32_t) +
         std::size_t{clusters} * features * sizeof(float);
}

std::size_t KMeans::footprint_bytes(ProblemSize s) const {
  const Params p = params_for(s);
  return working_set_bytes(p.points, p.features, p.clusters);
}

void KMeans::setup(ProblemSize size) { configure(params_for(size)); }

void KMeans::configure(const Params& params) {
  params_ = params;
  SplitMix64 rng(kSeed);
  features_.resize(params_.points * params_.features);
  for (float& f : features_) f = rng.uniform(0.0f, 10.0f);
  // Deterministic starting centroids: the first Cn points (the paper uses
  // random starting positions; a fixed choice keeps validation exact).
  centroids_.assign(features_.begin(),
                    features_.begin() + params_.clusters * params_.features);
  membership_.assign(params_.points, -1);
}

void KMeans::bind(xcl::Context& ctx, xcl::Queue& q) {
  ctx_ = &ctx;
  queue_ = &q;
  feature_buf_.emplace(ctx, features_.size() * sizeof(float));
  feature_buf_->named("features");
  cluster_buf_.emplace(ctx, centroids_.size() * sizeof(float));
  cluster_buf_->named("centroids");
  membership_buf_.emplace(ctx, membership_.size() * sizeof(std::int32_t));
  membership_buf_->named("membership");
  // lint: no-deps(bind-time upload: blocking by design, no producers yet)
  q.enqueue_write<float>(*feature_buf_, features_);
  // lint: no-deps(bind-time upload: blocking by design, no producers yet)
  centroid_write_ = q.enqueue_write<float>(*cluster_buf_, centroids_);
}

xcl::Event KMeans::enqueue_assign(std::size_t begin, std::size_t end,
                                  std::span<const xcl::Event> wait) {
  const std::size_t pn = params_.points;
  const unsigned fn = params_.features;
  const unsigned cn = params_.clusters;
  const std::size_t span_n = end - begin;
  auto feats = feature_buf_->access<const float>("features");
  auto clus = cluster_buf_->access<const float>("centroids");
  auto member = membership_buf_->access<std::int32_t>("membership");

  xcl::Kernel assign("kmeans_assign", [=](xcl::WorkItem& it) {
    const std::size_t i = begin + it.global_id(0);
    if (i >= end) return;
    float best = HUGE_VALF;
    std::int32_t best_c = 0;
    for (unsigned c = 0; c < cn; ++c) {
      float dist = 0.0f;
      for (unsigned f = 0; f < fn; ++f) {
        const float d = feats[i * fn + f] - clus[c * fn + f];
        dist += d * d;
      }
      if (dist < best) {
        best = dist;
        best_c = static_cast<std::int32_t>(c);
      }
    }
    member[i] = best_c;
  });

  // Span tier (DESIGN.md §9): same arithmetic in the same order over the
  // group's contiguous point run, but one call per group and restrict-
  // qualified pointers so the feature-distance loop can vectorize.
  assign.span([=](std::size_t lo, std::size_t hi) {
    const float* EOD_RESTRICT feat = feats.data();
    const float* EOD_RESTRICT cent = clus.data();
    std::int32_t* EOD_RESTRICT member_out = member.data();
    for (std::size_t i = begin + lo, last = std::min(begin + hi, end);
         i < last; ++i) {
      float best = HUGE_VALF;
      std::int32_t best_c = 0;
      for (unsigned c = 0; c < cn; ++c) {
        float dist = 0.0f;
        for (unsigned f = 0; f < fn; ++f) {
          const float d = feat[i * fn + f] - cent[c * fn + f];
          dist += d * d;
        }
        if (dist < best) {
          best = dist;
          best_c = static_cast<std::int32_t>(c);
        }
      }
      member_out[i] = best_c;
    }
  });

  // Simd tier (DESIGN.md §13): W points per step.  The feature rows of the
  // W points are transposed into per-feature lane vectors once, then every
  // centroid is scanned with the same subtract/square/accumulate sequence
  // the scalar body performs -- per lane the operation order is identical,
  // so the distances (and the < comparisons deciding membership) are
  // bit-exact.  The best/best_c running minimum uses mask selects, and the
  // sub-W tail runs the scalar loop verbatim.
  assign.simd([=](std::size_t lo, std::size_t hi) {
    namespace sv = xcl::simd;
    constexpr std::size_t W = sv::kLanes;
    constexpr unsigned kMaxFeatures = 32;
    const float* EOD_RESTRICT feat = feats.data();
    const float* EOD_RESTRICT cent = clus.data();
    std::int32_t* EOD_RESTRICT member_out = member.data();
    std::size_t i = begin + lo;
    const std::size_t last = std::min(begin + hi, end);
    if (fn <= kMaxFeatures) {
      sv::vfloat cols[kMaxFeatures];
      for (; i + W <= last; i += W) {
        for (unsigned f = 0; f < fn; ++f) {
          for (std::size_t l = 0; l < W; ++l) {
            cols[f][l] = feat[(i + l) * fn + f];
          }
        }
        sv::vfloat best = sv::vbroadcast(HUGE_VALF);
        sv::vint32 best_c = sv::vbroadcast_i32(0);
        for (unsigned c = 0; c < cn; ++c) {
          sv::vfloat dist = sv::vbroadcast(0.0f);
          for (unsigned f = 0; f < fn; ++f) {
            const sv::vfloat d = cols[f] - sv::vbroadcast(cent[c * fn + f]);
            dist += d * d;
          }
          const sv::vint32 closer = sv::vlt(dist, best);
          best = sv::vselect(closer, dist, best);
          best_c = sv::vselect_i32(
              closer, sv::vbroadcast_i32(static_cast<std::int32_t>(c)),
              best_c);
        }
        for (std::size_t l = 0; l < W; ++l) {
          member_out[i + l] = best_c[l];
        }
      }
    }
    for (; i < last; ++i) {
      float best = HUGE_VALF;
      std::int32_t best_c = 0;
      for (unsigned c = 0; c < cn; ++c) {
        float dist = 0.0f;
        for (unsigned f = 0; f < fn; ++f) {
          const float d = feat[i * fn + f] - cent[c * fn + f];
          dist += d * d;
        }
        if (dist < best) {
          best = dist;
          best_c = static_cast<std::int32_t>(c);
        }
      }
      member_out[i] = best_c;
    }
  });

  xcl::WorkloadProfile prof;
  prof.flops = static_cast<double>(span_n) * cn * (3.0 * fn);
  prof.int_ops = static_cast<double>(span_n) * cn * 2.0;
  prof.bytes_read = static_cast<double>(span_n) * fn * sizeof(float);
  prof.bytes_written = static_cast<double>(span_n) * sizeof(std::int32_t);
  // Residency is governed by the whole pass, not the half: both halves run
  // back-to-back over the same cache, so a half-launch never gains the
  // cache fit the full point set lacks.
  prof.working_set_bytes = static_cast<double>(
      working_set_bytes(pn, fn, cn));
  // Each work-item scans its point's contiguous feature row: ideal for CPU
  // prefetchers, uncoalesced across GPU lanes -- the layout behind the
  // paper's "CPU execution times were comparable to GPU" observation.
  prof.pattern = xcl::AccessPattern::kRowPerItem;
  prof.parallel_fraction = 1.0;
  return queue_->enqueue(assign,
                         xcl::NDRange(((span_n + 63) / 64) * 64, 64), prof,
                         wait);
}

void KMeans::host_update_centroids() {
  const unsigned fn = params_.features;
  const unsigned cn = params_.clusters;
  std::vector<double> sums(std::size_t{cn} * fn, 0.0);
  std::vector<std::size_t> counts(cn, 0);
  for (std::size_t i = 0; i < params_.points; ++i) {
    const auto c = static_cast<unsigned>(membership_[i]);
    ++counts[c];
    for (unsigned f = 0; f < fn; ++f) {
      sums[std::size_t{c} * fn + f] += features_[i * fn + f];
    }
  }
  for (unsigned c = 0; c < cn; ++c) {
    if (counts[c] == 0) continue;  // empty cluster keeps its centroid
    for (unsigned f = 0; f < fn; ++f) {
      centroids_[std::size_t{c} * fn + f] = static_cast<float>(
          sums[std::size_t{c} * fn + f] / static_cast<double>(counts[c]));
    }
  }
}

void KMeans::run() {
  // Double-buffered rounds (DESIGN.md §12): the point range is split in
  // half, each half's membership read-back waits only on its own assign
  // kernel, so on an out-of-order queue the first half's read overlaps the
  // second half's compute.  The centroid upload for the next round waits on
  // both assign kernels (they read the centroid buffer), which is also the
  // only edge the next round's kernels need.
  const std::size_t pn = params_.points;
  const std::size_t half = (pn + 1) / 2;  // ceil; a 1-point set has no tail
  for (unsigned round = 0; round < params_.rounds; ++round) {
    const xcl::Event dep[] = {centroid_write_};
    const xcl::Event a0 = enqueue_assign(0, half, dep);
    const xcl::Event a1 = half < pn ? enqueue_assign(half, pn, dep) : a0;
    const xcl::Event w0[] = {a0};
    const xcl::Event w1[] = {a1};
    const xcl::Event r0 = queue_->enqueue_read<std::int32_t>(
        *membership_buf_, std::span(membership_).subspan(0, half), 0, w0);
    xcl::Event r1 = r0;
    if (half < pn) {
      r1 = queue_->enqueue_read<std::int32_t>(
          *membership_buf_, std::span(membership_).subspan(half), half, w1);
    }
    queue_->wait(r0);
    queue_->wait(r1);
    if (queue_->functional()) host_update_centroids();
    const xcl::Event both[] = {a0, a1};
    centroid_write_ = queue_->enqueue_write<float>(
        *cluster_buf_, std::span<const float>(centroids_), both);
  }
}

void KMeans::finish() {
  // lint: no-deps(blocking read drains the assign/update chain by design)
  queue_->enqueue_read<std::int32_t>(*membership_buf_,
                                     std::span(membership_));
}

Validation KMeans::validate() {
  // Serial reference: identical fixed-round Lloyd iterations from the same
  // deterministic start.
  const unsigned fn = params_.features;
  const unsigned cn = params_.clusters;
  std::vector<float> ref_centroids(
      features_.begin(), features_.begin() + std::size_t{cn} * fn);
  std::vector<std::int32_t> ref_member(params_.points, -1);

  for (unsigned round = 0; round < params_.rounds; ++round) {
    for (std::size_t i = 0; i < params_.points; ++i) {
      float best = HUGE_VALF;
      std::int32_t best_c = 0;
      for (unsigned c = 0; c < cn; ++c) {
        float dist = 0.0f;
        for (unsigned f = 0; f < fn; ++f) {
          const float d =
              features_[i * fn + f] - ref_centroids[std::size_t{c} * fn + f];
          dist += d * d;
        }
        if (dist < best) {
          best = dist;
          best_c = static_cast<std::int32_t>(c);
        }
      }
      ref_member[i] = best_c;
    }
    std::vector<double> sums(std::size_t{cn} * fn, 0.0);
    std::vector<std::size_t> counts(cn, 0);
    for (std::size_t i = 0; i < params_.points; ++i) {
      const auto c = static_cast<unsigned>(ref_member[i]);
      ++counts[c];
      for (unsigned f = 0; f < fn; ++f) {
        sums[std::size_t{c} * fn + f] += features_[i * fn + f];
      }
    }
    for (unsigned c = 0; c < cn; ++c) {
      if (counts[c] == 0) continue;
      for (unsigned f = 0; f < fn; ++f) {
        ref_centroids[std::size_t{c} * fn + f] = static_cast<float>(
            sums[std::size_t{c} * fn + f] / static_cast<double>(counts[c]));
      }
    }
  }

  Validation v;
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < params_.points; ++i) {
    if (membership_[i] != ref_member[i]) ++mismatches;
  }
  v.error = static_cast<double>(mismatches);
  v.ok = mismatches == 0;
  std::ostringstream os;
  os << "kmeans membership: " << mismatches << " of " << params_.points
     << " points disagree with the serial reference";
  v.detail = os.str();
  return v;
}

void KMeans::unbind() {
  centroid_write_ = {};  // its queue pointer dies with this binding
  membership_buf_.reset();
  cluster_buf_.reset();
  feature_buf_.reset();
  ctx_ = nullptr;
  queue_ = nullptr;
}

void KMeans::stream_trace(sim::TraceWriter& out) const {
  // One assign pass in program order, as §4.4.1 describes the kernel's
  // traffic: stream features, reread the small centroid block per point,
  // write membership.  Addresses are laid out as on the device.
  const std::uint64_t feat_base = 0x10000;
  const std::uint64_t clus_base =
      feat_base + features_.size() * sizeof(float);
  const std::uint64_t memb_base =
      clus_base + centroids_.size() * sizeof(float);
  const unsigned fn = params_.features;
  const unsigned cn = params_.clusters;
  for (std::size_t i = 0; i < params_.points; ++i) {
    for (unsigned c = 0; c < cn; ++c) {
      for (unsigned f = 0; f < fn; ++f) {
        out.emit(feat_base + (i * fn + f) * sizeof(float), 4, false);
        out.emit(clus_base + (std::size_t{c} * fn + f) * sizeof(float), 4,
                 false);
      }
    }
    out.emit(memb_base + i * sizeof(std::int32_t), 4, true);
  }
}

std::size_t KMeans::trace_size_hint() const {
  return params_.points *
         (std::size_t{params_.clusters} * params_.features * 2 + 1);
}

}  // namespace eod::dwarfs
