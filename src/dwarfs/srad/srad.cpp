#include "dwarfs/srad/srad.hpp"

#include <algorithm>
#include <cmath>

#include "xcl/kernel.hpp"
#include "xcl/simd.hpp"

namespace eod::dwarfs {

namespace {

// ROI statistics (paper args fix the ROI at rows/cols 0..127, clamped to
// the grid) -> q0sqr, the speckle-scale estimate.
float roi_q0sqr(const std::vector<float>& j, std::size_t rows,
                std::size_t cols) {
  const std::size_t r1 = std::min<std::size_t>(127, rows - 1);
  const std::size_t c1 = std::min<std::size_t>(127, cols - 1);
  double sum = 0.0;
  double sum2 = 0.0;
  std::size_t count = 0;
  for (std::size_t r = 0; r <= r1; ++r) {
    for (std::size_t c = 0; c <= c1; ++c) {
      const double v = j[r * cols + c];
      sum += v;
      sum2 += v * v;
      ++count;
    }
  }
  const double mean = sum / static_cast<double>(count);
  const double var = sum2 / static_cast<double>(count) - mean * mean;
  return static_cast<float>(var / (mean * mean));
}

}  // namespace

Srad::Extent Srad::extent_for(ProblemSize s) {
  switch (s) {
    case ProblemSize::kTiny:
      return {80, 16};
    case ProblemSize::kSmall:
      return {128, 80};
    case ProblemSize::kMedium:
      return {1024, 336};
    case ProblemSize::kLarge:
      return {2048, 1024};
  }
  return {};
}

void Srad::setup(ProblemSize size) {
  const Extent e = extent_for(size);
  configure({e.rows, e.cols, kLambda, 1});
}

void Srad::configure(const Params& params) {
  require(params.rows >= 2 && params.cols >= 2, xcl::Status::kInvalidValue,
          "srad grid must be at least 2x2");
  require(params.lambda > 0.0f && params.lambda <= 1.0f,
          xcl::Status::kInvalidValue, "srad lambda must be in (0, 1]");
  extent_ = {params.rows, params.cols};
  lambda_ = params.lambda;
  iterations_ = std::max(1u, params.iterations);
  SplitMix64 rng(0x73726164ull);  // "srad"
  j_in_.resize(extent_.rows * extent_.cols);
  // Rodinia seeds J = exp(image); a positive speckled field works the same.
  for (float& v : j_in_) v = std::exp(rng.uniform(0.0f, 1.0f));
  j_out_.assign(j_in_.size(), 0.0f);
  q0sqr_ = roi_q0sqr(j_in_, extent_.rows, extent_.cols);
}

void Srad::bind(xcl::Context& ctx, xcl::Queue& q) {
  queue_ = &q;
  const std::size_t bytes = j_in_.size() * sizeof(float);
  j_buf_.emplace(ctx, bytes);
  c_buf_.emplace(ctx, bytes);
  dn_buf_.emplace(ctx, bytes);
  ds_buf_.emplace(ctx, bytes);
  dw_buf_.emplace(ctx, bytes);
  de_buf_.emplace(ctx, bytes);
}

void Srad::run() {
  const std::size_t rows = extent_.rows;
  const std::size_t cols = extent_.cols;
  const float q0 = q0sqr_;
  const float lam = lambda_;
  // lint: no-deps(first upload: blocking, no producers to wait on)
  const xcl::Event j_write = queue_->enqueue_write<float>(*j_buf_, j_in_);

  auto j = j_buf_->access<float>("j");
  auto c = c_buf_->access<float>("c");
  auto dn = dn_buf_->access<float>("dn");
  auto ds = ds_buf_->access<float>("ds");
  auto dw = dw_buf_->access<float>("dw");
  auto de = de_buf_->access<float>("de");

  // Halo-exchange decomposition (DESIGN.md §12): the grid is split into a
  // top and bottom row band; each band's stencil kernel waits only on the
  // kernels that produced the rows it reads (its own band plus the one
  // halo row across the boundary).  The per-cell arithmetic is byte-
  // identical to the whole-grid kernels, so results match the in-order
  // path bit for bit -- only the expressed dependencies are finer.
  auto make_srad1 = [=](std::size_t base, std::size_t limit) {
    xcl::Kernel k("srad_cuda_1", [=](xcl::WorkItem& it) {
      const std::size_t idx = base + it.global_id(0);
      if (idx >= limit) return;
      const std::size_t r = idx / cols;
    const std::size_t col = idx % cols;
    const std::size_t rn = r == 0 ? 0 : r - 1;
    const std::size_t rs = r == rows - 1 ? rows - 1 : r + 1;
    const std::size_t cw = col == 0 ? 0 : col - 1;
    const std::size_t ce = col == cols - 1 ? cols - 1 : col + 1;
    const float jc = j[idx];
    const float n = j[rn * cols + col] - jc;
    const float s = j[rs * cols + col] - jc;
    const float w = j[r * cols + cw] - jc;
    const float e = j[r * cols + ce] - jc;
    dn[idx] = n;
    ds[idx] = s;
    dw[idx] = w;
    de[idx] = e;
    const float g2 = (n * n + s * s + w * w + e * e) / (jc * jc);
    const float l = (n + s + w + e) / jc;
    const float num = 0.5f * g2 - (1.0f / 16.0f) * l * l;
    const float den1 = 1.0f + 0.25f * l;
    const float qsqr = num / (den1 * den1);
    const float den2 = (qsqr - q0) / (q0 * (1.0f + q0));
    c[idx] = std::clamp(1.0f / (1.0f + den2), 0.0f, 1.0f);
    });

    // Span tier for both stencil passes: a contiguous run of flat cells
    // per call; the six planes are distinct buffers, so every pointer is
    // restrict-qualified and the interior cells vectorize.
    k.span([=](std::size_t lo, std::size_t hi) {
    const float* EOD_RESTRICT jp = j.data();
    float* EOD_RESTRICT cp = c.data();
    float* EOD_RESTRICT dnp = dn.data();
    float* EOD_RESTRICT dsp = ds.data();
    float* EOD_RESTRICT dwp = dw.data();
    float* EOD_RESTRICT dep = de.data();
    for (std::size_t idx = base + lo, last = std::min(base + hi, limit);
         idx < last; ++idx) {
      const std::size_t r = idx / cols;
      const std::size_t col = idx % cols;
      const std::size_t rn = r == 0 ? 0 : r - 1;
      const std::size_t rs = r == rows - 1 ? rows - 1 : r + 1;
      const std::size_t cw = col == 0 ? 0 : col - 1;
      const std::size_t ce = col == cols - 1 ? cols - 1 : col + 1;
      const float jc = jp[idx];
      const float n = jp[rn * cols + col] - jc;
      const float s = jp[rs * cols + col] - jc;
      const float w = jp[r * cols + cw] - jc;
      const float e = jp[r * cols + ce] - jc;
      dnp[idx] = n;
      dsp[idx] = s;
      dwp[idx] = w;
      dep[idx] = e;
      const float g2 = (n * n + s * s + w * w + e * e) / (jc * jc);
      const float l = (n + s + w + e) / jc;
      const float num = 0.5f * g2 - (1.0f / 16.0f) * l * l;
      const float den1 = 1.0f + 0.25f * l;
      const float qsqr = num / (den1 * den1);
      const float den2 = (qsqr - q0) / (q0 * (1.0f + q0));
      cp[idx] = std::clamp(1.0f / (1.0f + den2), 0.0f, 1.0f);
    }
    });

    // Simd tier (DESIGN.md §13): W contiguous cells of one row at a time.
    // A block is vectorized only when every lane is an interior column
    // (the west/east clamps are no-ops) and the block does not cross a row
    // boundary; edge cells take the scalar path below, which is the span
    // body's loop verbatim.  Row clamps rn/rs are uniform across the
    // block, so the north/south neighbours are plain shifted loads.  Every
    // vector expression mirrors the scalar parse order, and the clamp is
    // two mask selects with std::clamp's exact comparison semantics
    // (including NaN and -0.0 pass-through).
    k.simd([=](std::size_t lo, std::size_t hi) {
      namespace sv = xcl::simd;
      constexpr std::size_t W = sv::kLanes;
      const float* EOD_RESTRICT jp = j.data();
      float* EOD_RESTRICT cp = c.data();
      float* EOD_RESTRICT dnp = dn.data();
      float* EOD_RESTRICT dsp = ds.data();
      float* EOD_RESTRICT dwp = dw.data();
      float* EOD_RESTRICT dep = de.data();
      const float den0 = q0 * (1.0f + q0);
      const sv::vfloat half = sv::vbroadcast(0.5f);
      const sv::vfloat sixteenth = sv::vbroadcast(1.0f / 16.0f);
      const sv::vfloat quarter = sv::vbroadcast(0.25f);
      const sv::vfloat one = sv::vbroadcast(1.0f);
      const sv::vfloat zero = sv::vbroadcast(0.0f);
      const sv::vfloat q0v = sv::vbroadcast(q0);
      const sv::vfloat den0v = sv::vbroadcast(den0);
      std::size_t idx = base + lo;
      const std::size_t last = std::min(base + hi, limit);
      while (idx < last) {
        const std::size_t r = idx / cols;
        const std::size_t col = idx % cols;
        if (W > 1 && col >= 1 && col + W <= cols - 1 && idx + W <= last) {
          const std::size_t rn = r == 0 ? 0 : r - 1;
          const std::size_t rs = r == rows - 1 ? rows - 1 : r + 1;
          const sv::vfloat jc = sv::vload(jp + idx);
          const sv::vfloat n = sv::vload(jp + rn * cols + col) - jc;
          const sv::vfloat s = sv::vload(jp + rs * cols + col) - jc;
          const sv::vfloat w = sv::vload(jp + idx - 1) - jc;
          const sv::vfloat e = sv::vload(jp + idx + 1) - jc;
          sv::vstore(dnp + idx, n);
          sv::vstore(dsp + idx, s);
          sv::vstore(dwp + idx, w);
          sv::vstore(dep + idx, e);
          const sv::vfloat g2 =
              (n * n + s * s + w * w + e * e) / (jc * jc);
          const sv::vfloat l = (n + s + w + e) / jc;
          const sv::vfloat num = half * g2 - sixteenth * l * l;
          const sv::vfloat den1 = one + quarter * l;
          const sv::vfloat qsqr = num / (den1 * den1);
          const sv::vfloat den2 = (qsqr - q0v) / den0v;
          const sv::vfloat raw = one / (one + den2);
          const sv::vfloat lo_clamped =
              sv::vselect(sv::vlt(raw, zero), zero, raw);
          sv::vstore(cp + idx,
                     sv::vselect(sv::vlt(one, lo_clamped), one, lo_clamped));
          idx += W;
          continue;
        }
        const std::size_t rn = r == 0 ? 0 : r - 1;
        const std::size_t rs = r == rows - 1 ? rows - 1 : r + 1;
        const std::size_t cw = col == 0 ? 0 : col - 1;
        const std::size_t ce = col == cols - 1 ? cols - 1 : col + 1;
        const float jc = jp[idx];
        const float n = jp[rn * cols + col] - jc;
        const float s = jp[rs * cols + col] - jc;
        const float w = jp[r * cols + cw] - jc;
        const float e = jp[r * cols + ce] - jc;
        dnp[idx] = n;
        dsp[idx] = s;
        dwp[idx] = w;
        dep[idx] = e;
        const float g2 = (n * n + s * s + w * w + e * e) / (jc * jc);
        const float l = (n + s + w + e) / jc;
        const float num = 0.5f * g2 - (1.0f / 16.0f) * l * l;
        const float den1 = 1.0f + 0.25f * l;
        const float qsqr = num / (den1 * den1);
        const float den2 = (qsqr - q0) / den0;
        cp[idx] = std::clamp(1.0f / (1.0f + den2), 0.0f, 1.0f);
        ++idx;
      }
    });
    return k;
  };

  auto make_srad2 = [=](std::size_t base, std::size_t limit) {
    xcl::Kernel k("srad_cuda_2", [=](xcl::WorkItem& it) {
      const std::size_t idx = base + it.global_id(0);
      if (idx >= limit) return;
      const std::size_t r = idx / cols;
      const std::size_t col = idx % cols;
      const std::size_t rs = r == rows - 1 ? rows - 1 : r + 1;
      const std::size_t ce = col == cols - 1 ? cols - 1 : col + 1;
      const float cc = c[idx];
      const float cs = c[rs * cols + col];
      const float cev = c[r * cols + ce];
      const float d =
          cc * dn[idx] + cs * ds[idx] + cc * dw[idx] + cev * de[idx];
      j[idx] += 0.25f * lam * d;
    });

    k.span([=](std::size_t lo, std::size_t hi) {
    float* EOD_RESTRICT jp = j.data();
    const float* EOD_RESTRICT cp = c.data();
    const float* EOD_RESTRICT dnp = dn.data();
    const float* EOD_RESTRICT dsp = ds.data();
    const float* EOD_RESTRICT dwp = dw.data();
    const float* EOD_RESTRICT dep = de.data();
    for (std::size_t idx = base + lo, last = std::min(base + hi, limit);
         idx < last; ++idx) {
      const std::size_t r = idx / cols;
      const std::size_t col = idx % cols;
      const std::size_t rs = r == rows - 1 ? rows - 1 : r + 1;
      const std::size_t ce = col == cols - 1 ? cols - 1 : col + 1;
      const float cc = cp[idx];
      const float cs = cp[rs * cols + col];
      const float cev = cp[r * cols + ce];
      const float d =
          cc * dnp[idx] + cs * dsp[idx] + cc * dwp[idx] + cev * dep[idx];
      jp[idx] += 0.25f * lam * d;
    }
    });

    // Simd tier: same blocking rule as srad_cuda_1 -- W interior cells of
    // one row per step, scalar elsewhere.  Only the east/south neighbours
    // matter here, so the column guard is one-sided.
    k.simd([=](std::size_t lo, std::size_t hi) {
      namespace sv = xcl::simd;
      constexpr std::size_t W = sv::kLanes;
      float* EOD_RESTRICT jp = j.data();
      const float* EOD_RESTRICT cp = c.data();
      const float* EOD_RESTRICT dnp = dn.data();
      const float* EOD_RESTRICT dsp = ds.data();
      const float* EOD_RESTRICT dwp = dw.data();
      const float* EOD_RESTRICT dep = de.data();
      const float scale = 0.25f * lam;
      const sv::vfloat scalev = sv::vbroadcast(scale);
      std::size_t idx = base + lo;
      const std::size_t last = std::min(base + hi, limit);
      while (idx < last) {
        const std::size_t r = idx / cols;
        const std::size_t col = idx % cols;
        if (W > 1 && col + W <= cols - 1 && idx + W <= last) {
          const std::size_t rs = r == rows - 1 ? rows - 1 : r + 1;
          const sv::vfloat cc = sv::vload(cp + idx);
          const sv::vfloat cs = sv::vload(cp + rs * cols + col);
          const sv::vfloat cev = sv::vload(cp + idx + 1);
          const sv::vfloat d = cc * sv::vload(dnp + idx) +
                               cs * sv::vload(dsp + idx) +
                               cc * sv::vload(dwp + idx) +
                               cev * sv::vload(dep + idx);
          sv::vstore(jp + idx, sv::vload(jp + idx) + scalev * d);
          idx += W;
          continue;
        }
        const std::size_t rs = r == rows - 1 ? rows - 1 : r + 1;
        const std::size_t ce = col == cols - 1 ? cols - 1 : col + 1;
        const float cc = cp[idx];
        const float cs = cp[rs * cols + col];
        const float cev = cp[r * cols + ce];
        const float d =
            cc * dnp[idx] + cs * dsp[idx] + cc * dwp[idx] + cev * dep[idx];
        jp[idx] += scale * d;
        ++idx;
      }
    });
    return k;
  };

  // Streaming terms scale with the band; the working set stays the whole
  // grid's six planes -- the two bands run over the same cache within one
  // pass, so a band never gains a cache fit the full grid lacks.
  const double all_cells = static_cast<double>(rows) * cols;
  auto make_p1 = [all_cells](double cells) {
    xcl::WorkloadProfile p;
    p.flops = cells * 22.0;
    p.int_ops = cells * 12.0;
    p.bytes_read = cells * 5 * sizeof(float);
    p.bytes_written = cells * 5 * sizeof(float);
    p.working_set_bytes = all_cells * 6 * sizeof(float);
    p.pattern = xcl::AccessPattern::kStencil;
    return p;
  };
  auto make_p2 = [all_cells](double cells) {
    xcl::WorkloadProfile p;
    p.flops = cells * 8.0;
    p.int_ops = cells * 10.0;
    p.bytes_read = cells * 7 * sizeof(float);
    p.bytes_written = cells * sizeof(float);
    p.working_set_bytes = all_cells * 6 * sizeof(float);
    p.pattern = xcl::AccessPattern::kStencil;
    return p;
  };

  // Top band: rows [0, rows/2); bottom band: the rest.  Each srad1 band
  // reads the j halo row across the boundary (written by the *other*
  // band's srad2 of the previous iteration), and each srad2 band must
  // follow both srad1 bands: srad2 overwrites j rows whose halo the other
  // band's srad1 still reads, and srad2's own c halo row is produced by
  // the neighbouring srad1.  Within a pass the two bands share no edges,
  // so an out-of-order queue runs them concurrently.
  const std::size_t total = rows * cols;
  const std::size_t band = (rows / 2) * cols;
  const std::size_t wg = 64;
  const xcl::Kernel srad1_top = make_srad1(0, band);
  const xcl::Kernel srad1_bot = make_srad1(band, total);
  const xcl::Kernel srad2_top = make_srad2(0, band);
  const xcl::Kernel srad2_bot = make_srad2(band, total);
  const xcl::WorkloadProfile p1_top = make_p1(static_cast<double>(band));
  const xcl::WorkloadProfile p1_bot =
      make_p1(static_cast<double>(total - band));
  const xcl::WorkloadProfile p2_top = make_p2(static_cast<double>(band));
  const xcl::WorkloadProfile p2_bot =
      make_p2(static_cast<double>(total - band));
  const xcl::NDRange range_top((band + wg - 1) / wg * wg, wg);
  const xcl::NDRange range_bot((total - band + wg - 1) / wg * wg, wg);

  xcl::Event s2_top = j_write;
  xcl::Event s2_bot = j_write;
  for (unsigned iter = 0; iter < iterations_; ++iter) {
    const xcl::Event prev[] = {s2_top, s2_bot};
    const xcl::Event s1_top =
        queue_->enqueue(srad1_top, range_top, p1_top, prev);
    const xcl::Event s1_bot =
        queue_->enqueue(srad1_bot, range_bot, p1_bot, prev);
    const xcl::Event stage1[] = {s1_top, s1_bot};
    s2_top = queue_->enqueue(srad2_top, range_top, p2_top, stage1);
    s2_bot = queue_->enqueue(srad2_bot, range_bot, p2_bot, stage1);
  }
}

void Srad::finish() {
  // lint: no-deps(blocking read drains the wavefront chain by design)
  queue_->enqueue_read<float>(*j_buf_, std::span(j_out_));
}

Validation Srad::validate() {
  const std::size_t rows = extent_.rows;
  const std::size_t cols = extent_.cols;
  std::vector<float> jr = j_in_;
  std::vector<float> cr(jr.size()), dnr(jr.size()), dsr(jr.size()),
      dwr(jr.size()), der(jr.size());
  for (unsigned iter = 0; iter < iterations_; ++iter) {
  for (std::size_t idx = 0; idx < jr.size(); ++idx) {
    const std::size_t r = idx / cols;
    const std::size_t col = idx % cols;
    const std::size_t rn = r == 0 ? 0 : r - 1;
    const std::size_t rs = r == rows - 1 ? rows - 1 : r + 1;
    const std::size_t cw = col == 0 ? 0 : col - 1;
    const std::size_t ce = col == cols - 1 ? cols - 1 : col + 1;
    const float jc = jr[idx];
    const float n = jr[rn * cols + col] - jc;
    const float s = jr[rs * cols + col] - jc;
    const float w = jr[r * cols + cw] - jc;
    const float e = jr[r * cols + ce] - jc;
    dnr[idx] = n;
    dsr[idx] = s;
    dwr[idx] = w;
    der[idx] = e;
    const float g2 = (n * n + s * s + w * w + e * e) / (jc * jc);
    const float l = (n + s + w + e) / jc;
    const float num = 0.5f * g2 - (1.0f / 16.0f) * l * l;
    const float den1 = 1.0f + 0.25f * l;
    const float qsqr = num / (den1 * den1);
    const float den2 = (qsqr - q0sqr_) / (q0sqr_ * (1.0f + q0sqr_));
    cr[idx] = std::clamp(1.0f / (1.0f + den2), 0.0f, 1.0f);
  }
  for (std::size_t idx = 0; idx < jr.size(); ++idx) {
    const std::size_t r = idx / cols;
    const std::size_t col = idx % cols;
    const std::size_t rs = r == rows - 1 ? rows - 1 : r + 1;
    const std::size_t ce = col == cols - 1 ? cols - 1 : col + 1;
    const float d = cr[idx] * dnr[idx] + cr[rs * cols + col] * dsr[idx] +
                    cr[idx] * dwr[idx] + cr[r * cols + ce] * der[idx];
    jr[idx] += 0.25f * lambda_ * d;
  }
  }
  return validate_norm(j_out_, jr, 1e-6, "srad diffusion steps");
}

void Srad::stream_trace(sim::TraceWriter& out) const {
  // One diffusion step: srad1's 5-point stencil reads + coefficient and
  // derivative writes, then srad2's coefficient-weighted update.
  const std::size_t rows = extent_.rows;
  const std::size_t cols = extent_.cols;
  const std::uint64_t cells = rows * cols;
  const std::uint64_t j_base = 0x10000;
  const std::uint64_t c_base = j_base + cells * 4;
  const std::uint64_t d_base = c_base + cells * 4;  // dN,dS,dW,dE packed
  for (std::size_t idx = 0; idx < cells; ++idx) {
    const std::size_t r = idx / cols;
    const std::size_t col = idx % cols;
    const std::size_t rn = r == 0 ? 0 : r - 1;
    const std::size_t rs = r == rows - 1 ? rows - 1 : r + 1;
    const std::size_t cw = col == 0 ? 0 : col - 1;
    const std::size_t ce = col == cols - 1 ? cols - 1 : col + 1;
    out.emit(j_base + idx * 4, 4, false);
    out.emit(j_base + (rn * cols + col) * 4, 4, false);
    out.emit(j_base + (rs * cols + col) * 4, 4, false);
    out.emit(j_base + (r * cols + cw) * 4, 4, false);
    out.emit(j_base + (r * cols + ce) * 4, 4, false);
    for (unsigned k = 0; k < 4; ++k) {
      out.emit(d_base + (k * cells + idx) * 4, 4, true);
    }
    out.emit(c_base + idx * 4, 4, true);
  }
  for (std::size_t idx = 0; idx < cells; ++idx) {
    const std::size_t r = idx / cols;
    const std::size_t col = idx % cols;
    const std::size_t rs = r == rows - 1 ? rows - 1 : r + 1;
    const std::size_t ce = col == cols - 1 ? cols - 1 : col + 1;
    out.emit(c_base + idx * 4, 4, false);
    out.emit(c_base + (rs * cols + col) * 4, 4, false);
    out.emit(c_base + (r * cols + ce) * 4, 4, false);
    for (unsigned k = 0; k < 4; ++k) {
      out.emit(d_base + (k * cells + idx) * 4, 4, false);
    }
    out.emit(j_base + idx * 4, 4, true);
  }
}

std::size_t Srad::trace_size_hint() const {
  // 10 accesses per cell in srad1 + 8 in srad2.
  return 18 * std::size_t{extent_.rows} * extent_.cols;
}

void Srad::unbind() {
  de_buf_.reset();
  dw_buf_.reset();
  ds_buf_.reset();
  dn_buf_.reset();
  c_buf_.reset();
  j_buf_.reset();
  queue_ = nullptr;
}

}  // namespace eod::dwarfs
