// Speckle-reducing anisotropic diffusion -- the Structured Grid dwarf.
//
// Rodinia/OpenDwarfs SRAD: two stencil kernels per diffusion iteration
// (gradient + diffusion-coefficient, then the update sweep) over an
// rows x cols grid with clamped boundaries.  Table 3 arguments map to
// rows=Phi1, cols=Phi2, ROI 0..127 in each axis, lambda=0.5, 1 iteration.
// Asanovic et al. class this dwarf memory-bandwidth-limited, which is why
// the paper's CPU-GPU gap widens with problem size (Fig. 3a).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "dwarfs/common.hpp"

namespace eod::dwarfs {

class Srad final : public Dwarf {
 public:
  static constexpr float kLambda = 0.5f;  // Table 3 default

  struct Params {
    std::size_t rows = 0;
    std::size_t cols = 0;
    float lambda = kLambda;
    unsigned iterations = 1;  // Table 3: srad ... 0.5 1
  };

  struct Extent {
    std::size_t rows = 0;
    std::size_t cols = 0;
  };
  /// Table 2, srad row: rows,cols per size class.
  [[nodiscard]] static Extent extent_for(ProblemSize s);

  /// Custom grid/lambda/iteration count; setup(size) is the Table 2/3
  /// preset configure({extent_for(size).rows, extent_for(size).cols}).
  void configure(const Params& params);

  [[nodiscard]] std::string name() const override { return "srad"; }
  [[nodiscard]] std::string berkeley_dwarf() const override {
    return "Structured Grid";
  }
  [[nodiscard]] std::string scale_parameter(ProblemSize s) const override {
    const Extent e = extent_for(s);
    return std::to_string(e.rows) + "," + std::to_string(e.cols);
  }
  /// J, c, dN, dS, dW, dE: six rows x cols float arrays.
  [[nodiscard]] std::size_t footprint_bytes(ProblemSize s) const override {
    const Extent e = extent_for(s);
    return 6 * e.rows * e.cols * sizeof(float);
  }

  using Dwarf::stream_trace;
  void stream_trace(sim::TraceWriter& out) const override;
  [[nodiscard]] std::size_t trace_size_hint() const override;

  void setup(ProblemSize size) override;
  void bind(xcl::Context& ctx, xcl::Queue& q) override;
  void run() override;
  void finish() override;
  [[nodiscard]] Validation validate() override;
  void unbind() override;

  /// Diffused image plane, byte-exact.
  [[nodiscard]] std::uint64_t result_signature() const override {
    return hash_result<float>(j_out_);
  }

 private:
  Extent extent_;
  float lambda_ = kLambda;
  unsigned iterations_ = 1;
  float q0sqr_ = 0.0f;
  std::vector<float> j_in_;
  std::vector<float> j_out_;

  xcl::Queue* queue_ = nullptr;
  std::optional<xcl::Buffer> j_buf_;
  std::optional<xcl::Buffer> c_buf_;
  std::optional<xcl::Buffer> dn_buf_;
  std::optional<xcl::Buffer> ds_buf_;
  std::optional<xcl::Buffer> dw_buf_;
  std::optional<xcl::Buffer> de_buf_;
};

}  // namespace eod::dwarfs
