#include "dwarfs/lud/lud.hpp"

#include <cmath>

#include "xcl/kernel.hpp"

namespace eod::dwarfs {

namespace {
constexpr std::size_t B = Lud::kBlock;
}  // namespace

std::size_t Lud::dim_for(ProblemSize s) {
  switch (s) {
    case ProblemSize::kTiny:
      return 80;
    case ProblemSize::kSmall:
      return 240;
    case ProblemSize::kMedium:
      return 1440;
    case ProblemSize::kLarge:
      return 4096;
  }
  return 0;
}

void Lud::setup(ProblemSize size) { configure(dim_for(size)); }

void Lud::configure(std::size_t n) {
  require(n >= B && n % B == 0, xcl::Status::kInvalidValue,
          "lud dimension must be a positive multiple of 16");
  n_ = n;
  SplitMix64 rng(0x6c7564ull);  // "lud"
  input_.resize(n_ * n_);
  for (float& x : input_) x = rng.uniform(0.0f, 1.0f);
  // Diagonal dominance keeps the pivot-free factorization stable.
  for (std::size_t i = 0; i < n_; ++i) {
    input_[i * n_ + i] += static_cast<float>(n_);
  }
  result_.assign(input_.size(), 0.0f);
}

void Lud::bind(xcl::Context& ctx, xcl::Queue& q) {
  queue_ = &q;
  matrix_buf_.emplace(ctx, input_.size() * sizeof(float));
}

xcl::Kernel Lud::make_diagonal_kernel(xcl::Buffer& matrix, std::size_t n,
                                      std::size_t k) {
  auto a = matrix.access<float>("matrix");
  const std::size_t base = k * B * n + k * B;

  xcl::Kernel diag("lud_diagonal", [=](xcl::WorkItem& it) {
    const std::size_t j = it.local_id(0);
    for (std::size_t i = 0; i + 1 < B; ++i) {
      it.barrier();
      if (j > i) {
        const float pivot = a[base + i * n + i];
        const float lji = a[base + j * n + i] / pivot;
        a[base + j * n + i] = lji;
        for (std::size_t l = i + 1; l < B; ++l) {
          a[base + j * n + l] -= lji * a[base + i * n + l];
        }
      }
      it.barrier();
    }
  });
  diag.uses_barriers();

  // Span tier (DESIGN.md §9): the sequential unblocked elimination.  The
  // barriers only ordered the i iterations; within one i the rows j > i
  // never read each other, so the j-then-l loops replay each element's
  // exact operation sequence and the factor is bit-identical.
  diag.span([=](std::size_t, std::size_t) {
    float* EOD_RESTRICT p = a.data();
    for (std::size_t i = 0; i + 1 < B; ++i) {
      const float pivot = p[base + i * n + i];
      for (std::size_t j = i + 1; j < B; ++j) {
        const float lji = p[base + j * n + i] / pivot;
        p[base + j * n + i] = lji;
        for (std::size_t l = i + 1; l < B; ++l) {
          p[base + j * n + l] -= lji * p[base + i * n + l];
        }
      }
    }
  });
  return diag;
}

xcl::Kernel Lud::make_perimeter_row_kernel(xcl::Buffer& matrix, std::size_t n,
                                           std::size_t k) {
  auto a = matrix.access<float>("matrix");
  const std::size_t diag_base = k * B * n + k * B;

  // Row blocks (k, m): U := L_kk^-1 A.  One work-item owns one column of
  // its block; the in-column dependency is carried inside the item, so no
  // barrier is required.
  xcl::Kernel row("lud_perimeter_row", [=](xcl::WorkItem& it) {
    const std::size_t m = k + 1 + it.group_id(0);
    const std::size_t c = it.local_id(0);
    const std::size_t blk = k * B * n + m * B;
    for (std::size_t i = 1; i < B; ++i) {
      float acc = a[blk + i * n + c];
      for (std::size_t t = 0; t < i; ++t) {
        acc -= a[diag_base + i * n + t] * a[blk + t * n + c];
      }
      a[blk + i * n + c] = acc;
    }
  });

  // Span tier: same triangular solve with the row loop outermost and the
  // B independent columns innermost (vectorizable); each element's
  // accumulation order is unchanged, so the panel is bit-identical.
  row.span([=](std::size_t begin, std::size_t /*end*/) {
    const std::size_t m = k + 1 + begin / B;
    const std::size_t blk = k * B * n + m * B;
    float* EOD_RESTRICT p = a.data();
    for (std::size_t i = 1; i < B; ++i) {
      for (std::size_t c = 0; c < B; ++c) {
        float acc = p[blk + i * n + c];
        for (std::size_t t = 0; t < i; ++t) {
          acc -= p[diag_base + i * n + t] * p[blk + t * n + c];
        }
        p[blk + i * n + c] = acc;
      }
    }
  });
  return row;
}

xcl::Kernel Lud::make_perimeter_col_kernel(xcl::Buffer& matrix, std::size_t n,
                                           std::size_t k, std::size_t m_lo) {
  auto a = matrix.access<float>("matrix");
  const std::size_t diag_base = k * B * n + k * B;

  // Column blocks (m, k): L := A U_kk^-1.  One work-item owns one row.
  xcl::Kernel col("lud_perimeter_col", [=](xcl::WorkItem& it) {
    const std::size_t m = m_lo + it.group_id(0);
    const std::size_t r = it.local_id(0);
    const std::size_t blk = m * B * n + k * B;
    for (std::size_t j = 0; j < B; ++j) {
      float acc = a[blk + r * n + j];
      for (std::size_t t = 0; t < j; ++t) {
        acc -= a[blk + r * n + t] * a[diag_base + t * n + j];
      }
      a[blk + r * n + j] = acc / a[diag_base + j * n + j];
    }
  });

  // Span tier: rows of the block are independent; replaying each row's
  // j loop in item order keeps the solve bit-identical.
  col.span([=](std::size_t begin, std::size_t /*end*/) {
    const std::size_t m = m_lo + begin / B;
    const std::size_t blk = m * B * n + k * B;
    float* EOD_RESTRICT p = a.data();
    for (std::size_t r = 0; r < B; ++r) {
      for (std::size_t j = 0; j < B; ++j) {
        float acc = p[blk + r * n + j];
        for (std::size_t t = 0; t < j; ++t) {
          acc -= p[blk + r * n + t] * p[diag_base + t * n + j];
        }
        p[blk + r * n + j] = acc / p[diag_base + j * n + j];
      }
    }
  });
  return col;
}

xcl::Kernel Lud::make_internal_kernel(xcl::Buffer& matrix, std::size_t n,
                                      std::size_t k, std::size_t bi_lo) {
  auto a = matrix.access<float>("matrix");
  const std::size_t rem = n / B - k - 1;  // trailing block columns

  // Tiled GEMM update A_ij -= L_ik * U_kj staged through __local memory.
  // The (bi, bj) block grid is flattened bi-major onto a 1-D range of
  // B*B-item groups so the span tier below is reachable (span bodies only
  // dispatch for 1-D ranges); the work-item set and its math are the same
  // as the historical 2-D launch.
  xcl::Kernel internal("lud_internal", [=](xcl::WorkItem& it) {
    const std::size_t g = it.group_id(0);
    const std::size_t bi = bi_lo + g / rem;
    const std::size_t bj = k + 1 + g % rem;
    const std::size_t r = it.local_id(0) / B;
    const std::size_t c = it.local_id(0) % B;
    auto l_tile = it.local<float>(0, B * B);
    auto u_tile = it.local<float>(1, B * B);
    l_tile[r * B + c] = a[(bi * B + r) * n + k * B + c];
    u_tile[r * B + c] = a[(k * B + r) * n + bj * B + c];
    it.barrier();
    float acc = 0.0f;
    for (std::size_t t = 0; t < B; ++t) {
      acc += l_tile[r * B + t] * u_tile[t * B + c];
    }
    it.barrier();
    a[(bi * B + r) * n + bj * B + c] -= acc;
  });
  internal.uses_barriers();

  // Span tier: one call per block.  The __local tiles were pure copies, so
  // reading the panels in place accumulates the same products in the same
  // t order per element -- bit-identical -- while the c-indexed
  // accumulator row vectorizes.
  internal.span([=](std::size_t begin, std::size_t /*end*/) {
    const std::size_t g = begin / (B * B);
    const std::size_t bi = bi_lo + g / rem;
    const std::size_t bj = k + 1 + g % rem;
    float* EOD_RESTRICT p = a.data();
    for (std::size_t r = 0; r < B; ++r) {
      float acc[B] = {};
      for (std::size_t t = 0; t < B; ++t) {
        const float l = p[(bi * B + r) * n + k * B + t];
        const float* EOD_RESTRICT u = p + (k * B + t) * n + bj * B;
        for (std::size_t c = 0; c < B; ++c) acc[c] += l * u[c];
      }
      float* EOD_RESTRICT out = p + (bi * B + r) * n + bj * B;
      for (std::size_t c = 0; c < B; ++c) out[c] -= acc[c];
    }
  });
  return internal;
}

xcl::WorkloadProfile Lud::diagonal_profile(std::size_t n) {
  xcl::WorkloadProfile prof;
  prof.flops = 2.0 / 3.0 * B * B * B;
  prof.int_ops = static_cast<double>(B) * B * 2;
  prof.bytes_read = static_cast<double>(B) * B * sizeof(float) * 2;
  prof.bytes_written = static_cast<double>(B) * B * sizeof(float);
  prof.working_set_bytes = static_cast<double>(n) * n * sizeof(float);
  prof.pattern = xcl::AccessPattern::kTiled;
  return prof;
}

xcl::WorkloadProfile Lud::perimeter_profile(std::size_t n,
                                            std::size_t blocks) {
  xcl::WorkloadProfile prof;
  prof.flops = static_cast<double>(blocks) * B * B * B;
  prof.int_ops = static_cast<double>(blocks) * B * B * 2;
  prof.bytes_read = static_cast<double>(blocks) * 2 * B * B * sizeof(float);
  prof.bytes_written = static_cast<double>(blocks) * B * B * sizeof(float);
  prof.working_set_bytes = static_cast<double>(n) * n * sizeof(float);
  prof.pattern = xcl::AccessPattern::kTiled;
  return prof;
}

xcl::WorkloadProfile Lud::internal_profile(std::size_t n,
                                           std::size_t bi_blocks,
                                           std::size_t bj_blocks) {
  const double blocks = static_cast<double>(bi_blocks) * bj_blocks;
  xcl::WorkloadProfile prof;
  prof.flops = blocks * 2.0 * B * B * B;
  prof.int_ops = blocks * B * B * 3;
  prof.bytes_read = blocks * 3 * B * B * sizeof(float);
  prof.bytes_written = blocks * B * B * sizeof(float);
  prof.working_set_bytes = static_cast<double>(n) * n * sizeof(float);
  prof.pattern = xcl::AccessPattern::kTiled;
  return prof;
}

void Lud::enqueue_diagonal(std::size_t k) {
  queue_->enqueue(make_diagonal_kernel(*matrix_buf_, n_, k),
                  xcl::NDRange(B, B), diagonal_profile(n_));
}

void Lud::enqueue_perimeter(std::size_t k) {
  const std::size_t nb = n_ / B;
  const std::size_t rem = nb - k - 1;
  if (rem == 0) return;
  const xcl::WorkloadProfile prof = perimeter_profile(n_, rem);
  queue_->enqueue(make_perimeter_row_kernel(*matrix_buf_, n_, k),
                  xcl::NDRange(rem * B, B), prof);
  queue_->enqueue(make_perimeter_col_kernel(*matrix_buf_, n_, k, k + 1),
                  xcl::NDRange(rem * B, B), prof);
}

void Lud::enqueue_internal(std::size_t k) {
  const std::size_t nb = n_ / B;
  const std::size_t rem = nb - k - 1;
  if (rem == 0) return;
  queue_->enqueue(make_internal_kernel(*matrix_buf_, n_, k, k + 1),
                  xcl::NDRange(rem * rem * B * B, B * B),
                  internal_profile(n_, rem, rem));
}

void Lud::run() {
  // The factorization is destructive, so each application iteration
  // re-uploads the input (a memory-transfer segment, as in OpenDwarfs).
  queue_->enqueue_write<float>(*matrix_buf_, input_);
  const std::size_t nb = n_ / B;
  for (std::size_t k = 0; k < nb; ++k) {
    enqueue_diagonal(k);
    enqueue_perimeter(k);
    enqueue_internal(k);
  }
}

void Lud::finish() {
  queue_->enqueue_read<float>(*matrix_buf_, std::span(result_));
}

Validation Lud::validate() {
  // Reconstruct L*U from the packed factor and compare with the original
  // matrix (norm comparison, §4.4.2).
  const std::size_t n = n_;
  std::vector<float> recon(n * n, 0.0f);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      const std::size_t kmax = std::min(i, j);
      for (std::size_t t = 0; t <= kmax; ++t) {
        const double l = (t == i) ? 1.0 : result_[i * n + t];
        acc += l * result_[t * n + j];
      }
      recon[i * n + j] = static_cast<float>(acc);
    }
  }
  return validate_norm(recon, input_, 1e-4, "lud L*U reconstruction");
}

void Lud::stream_trace(sim::TraceWriter& out) const {
  // Blocked factorization order: per step k, the diagonal block, the
  // perimeter row/column panels, then every interior block re-reading its
  // L/U panels -- the tiled-reuse pattern the kTiled factor models.
  const std::size_t n = n_;
  const std::size_t nb = n / B;
  const std::uint64_t base = 0x10000;
  auto touch_block = [&](std::size_t bi, std::size_t bj, bool write) {
    // Each block row is a dense 4B-stride run of B elements.
    for (std::size_t r = 0; r < B; ++r) {
      out.emit_run(base + ((bi * B + r) * n + bj * B) * 4, 4, B, write);
    }
  };
  for (std::size_t k = 0; k < nb; ++k) {
    touch_block(k, k, true);
    for (std::size_t m = k + 1; m < nb; ++m) {
      touch_block(k, k, false);
      touch_block(k, m, true);  // row panel
      touch_block(m, k, true);  // column panel
    }
    for (std::size_t bi = k + 1; bi < nb; ++bi) {
      for (std::size_t bj = k + 1; bj < nb; ++bj) {
        touch_block(bi, k, false);
        touch_block(k, bj, false);
        touch_block(bi, bj, true);
      }
    }
  }
}

std::size_t Lud::trace_size_hint() const {
  const std::size_t nb = n_ / B;
  std::size_t blocks = 0;
  for (std::size_t k = 0; k < nb; ++k) {
    const std::size_t rest = nb - k - 1;
    blocks += 1 + 3 * rest + 3 * rest * rest;
  }
  return blocks * B * B;
}

void Lud::unbind() {
  matrix_buf_.reset();
  queue_ = nullptr;
}

}  // namespace eod::dwarfs
