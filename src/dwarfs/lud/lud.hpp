// Blocked LU decomposition -- the Dense Linear Algebra dwarf.
//
// Rodinia-style three-kernel blocked factorization (block size 16): a
// diagonal kernel (work-group cooperating through barriers), two perimeter
// kernels (independent row/column solves), and an internal kernel (tiled
// matrix-multiply update staged through __local memory with barriers).
// The input matrix is generated diagonally dominant so the factorization is
// stable without pivoting; validation reconstructs L*U and compares norms
// against the original matrix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "dwarfs/common.hpp"
#include "xcl/kernel.hpp"
#include "xcl/modeling.hpp"

namespace eod::dwarfs {

class Lud final : public Dwarf {
 public:
  static constexpr std::size_t kBlock = 16;

  /// Table 2, lud row: Phi = matrix dimension n (n x n floats).
  [[nodiscard]] static std::size_t dim_for(ProblemSize s);

  /// Custom matrix dimension (must be a multiple of kBlock); setup(size)
  /// is the Table 2 preset configure(dim_for(size)).
  void configure(std::size_t n);

  [[nodiscard]] std::string name() const override { return "lud"; }
  [[nodiscard]] std::string berkeley_dwarf() const override {
    return "Dense Linear Algebra";
  }
  [[nodiscard]] std::string scale_parameter(ProblemSize s) const override {
    return std::to_string(dim_for(s));
  }
  [[nodiscard]] std::size_t footprint_bytes(ProblemSize s) const override {
    const std::size_t n = dim_for(s);
    return n * n * sizeof(float);
  }

  using Dwarf::stream_trace;
  void stream_trace(sim::TraceWriter& out) const override;
  [[nodiscard]] std::size_t trace_size_hint() const override;

  void setup(ProblemSize size) override;
  void bind(xcl::Context& ctx, xcl::Queue& q) override;
  void run() override;
  void finish() override;
  [[nodiscard]] Validation validate() override;
  void unbind() override;

  /// Packed L\U factor after the sweep, byte-exact.  The factorization is
  /// pivot-free and every kernel body evaluates in a fixed order, so the
  /// signature is reproducible across dispatch tiers and device counts.
  [[nodiscard]] std::uint64_t result_signature() const override {
    return hash_result<float>(result_);
  }

  // ---- shared kernel construction (harness/partition reuses it) ----
  //
  // Each factory builds one of the three Rodinia kernels over an (n x n)
  // matrix buffer for factorization step `k`.  The perimeter-column and
  // internal factories take the first block-row they should cover
  // (`m_lo` / `bi_lo`) so the partitioned runner can restrict a launch to
  // one device's block-row stripe; the single-device path passes k + 1 and
  // recovers the historical full-range launches bit for bit.
  [[nodiscard]] static xcl::Kernel make_diagonal_kernel(xcl::Buffer& matrix,
                                                        std::size_t n,
                                                        std::size_t k);
  [[nodiscard]] static xcl::Kernel make_perimeter_row_kernel(
      xcl::Buffer& matrix, std::size_t n, std::size_t k);
  [[nodiscard]] static xcl::Kernel make_perimeter_col_kernel(
      xcl::Buffer& matrix, std::size_t n, std::size_t k, std::size_t m_lo);
  [[nodiscard]] static xcl::Kernel make_internal_kernel(xcl::Buffer& matrix,
                                                        std::size_t n,
                                                        std::size_t k,
                                                        std::size_t bi_lo);
  [[nodiscard]] static xcl::WorkloadProfile diagonal_profile(std::size_t n);
  /// Profile for `blocks` perimeter panel blocks.
  [[nodiscard]] static xcl::WorkloadProfile perimeter_profile(
      std::size_t n, std::size_t blocks);
  /// Profile for a `bi_blocks` x `bj_blocks` trailing-submatrix update.
  [[nodiscard]] static xcl::WorkloadProfile internal_profile(
      std::size_t n, std::size_t bi_blocks, std::size_t bj_blocks);

  // ---- partitioned-runner access (harness/partition) ----
  [[nodiscard]] std::size_t dim() const noexcept { return n_; }
  [[nodiscard]] const std::vector<float>& input() const noexcept {
    return input_;
  }
  /// Installs an externally computed factor (the partitioned runner's
  /// assembled panels) so validate()/result_signature() work unchanged.
  void adopt_result(std::vector<float> result) {
    require(result.size() == input_.size(), xcl::Status::kInvalidValue,
            "lud adopted result has the wrong shape");
    result_ = std::move(result);
  }

 private:
  void enqueue_diagonal(std::size_t k);
  void enqueue_perimeter(std::size_t k);
  void enqueue_internal(std::size_t k);

  std::size_t n_ = 0;
  std::vector<float> input_;   // original matrix (restored every run)
  std::vector<float> result_;  // factorized matrix read back by finish()

  xcl::Queue* queue_ = nullptr;
  std::optional<xcl::Buffer> matrix_buf_;
};

}  // namespace eod::dwarfs
