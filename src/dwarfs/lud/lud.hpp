// Blocked LU decomposition -- the Dense Linear Algebra dwarf.
//
// Rodinia-style three-kernel blocked factorization (block size 16): a
// diagonal kernel (work-group cooperating through barriers), two perimeter
// kernels (independent row/column solves), and an internal kernel (tiled
// matrix-multiply update staged through __local memory with barriers).
// The input matrix is generated diagonally dominant so the factorization is
// stable without pivoting; validation reconstructs L*U and compares norms
// against the original matrix.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "dwarfs/common.hpp"

namespace eod::dwarfs {

class Lud final : public Dwarf {
 public:
  static constexpr std::size_t kBlock = 16;

  /// Table 2, lud row: Phi = matrix dimension n (n x n floats).
  [[nodiscard]] static std::size_t dim_for(ProblemSize s);

  /// Custom matrix dimension (must be a multiple of kBlock); setup(size)
  /// is the Table 2 preset configure(dim_for(size)).
  void configure(std::size_t n);

  [[nodiscard]] std::string name() const override { return "lud"; }
  [[nodiscard]] std::string berkeley_dwarf() const override {
    return "Dense Linear Algebra";
  }
  [[nodiscard]] std::string scale_parameter(ProblemSize s) const override {
    return std::to_string(dim_for(s));
  }
  [[nodiscard]] std::size_t footprint_bytes(ProblemSize s) const override {
    const std::size_t n = dim_for(s);
    return n * n * sizeof(float);
  }

  using Dwarf::stream_trace;
  void stream_trace(sim::TraceWriter& out) const override;
  [[nodiscard]] std::size_t trace_size_hint() const override;

  void setup(ProblemSize size) override;
  void bind(xcl::Context& ctx, xcl::Queue& q) override;
  void run() override;
  void finish() override;
  [[nodiscard]] Validation validate() override;
  void unbind() override;

 private:
  void enqueue_diagonal(std::size_t k);
  void enqueue_perimeter(std::size_t k);
  void enqueue_internal(std::size_t k);

  std::size_t n_ = 0;
  std::vector<float> input_;   // original matrix (restored every run)
  std::vector<float> result_;  // factorized matrix read back by finish()

  xcl::Queue* queue_ = nullptr;
  std::optional<xcl::Buffer> matrix_buf_;
};

}  // namespace eod::dwarfs
