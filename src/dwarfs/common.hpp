// Shared benchmark framework: the Dwarf interface every benchmark
// implements, problem-size naming, validation helpers, and a deterministic
// RNG for workload generation.
//
// The paper's methodology (§4.4) drives the interface: each benchmark must
// expose its device-side memory footprint per problem size (the Table 2
// working-set equations), generate its own input data, run through the xcl
// runtime, and validate results against a serial reference "either by
// directly comparing outputs against a serial implementation ... or by
// adding utilities to compare norms".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/cache_sim.hpp"
#include "sim/trace_replay.hpp"
#include "xcl/buffer.hpp"
#include "xcl/queue.hpp"

namespace eod::dwarfs {

/// The four problem-size classes of §4.4, anchored to the Skylake memory
/// hierarchy: tiny -> 32 KiB L1, small -> 256 KiB L2, medium -> 8 MiB L3,
/// large -> at least 4x L3 (out of cache).
enum class ProblemSize : std::uint8_t { kTiny, kSmall, kMedium, kLarge };

inline constexpr ProblemSize kAllSizes[] = {
    ProblemSize::kTiny, ProblemSize::kSmall, ProblemSize::kMedium,
    ProblemSize::kLarge};

[[nodiscard]] const char* to_string(ProblemSize s) noexcept;
[[nodiscard]] std::optional<ProblemSize> parse_problem_size(
    const std::string& name) noexcept;

/// Result of comparing device output with the serial reference.
struct Validation {
  bool ok = false;
  double error = 0.0;      ///< metric value (max abs diff or relative norm)
  std::string detail;      ///< human-readable explanation
};

/// Relative L2-norm difference ||a-b|| / ||b|| (paper: "compare norms").
[[nodiscard]] double rel_l2_diff(std::span<const float> a,
                                 std::span<const float> b);
[[nodiscard]] double max_abs_diff(std::span<const float> a,
                                  std::span<const float> b);

/// Builds a Validation from a relative-norm comparison with tolerance.
[[nodiscard]] Validation validate_norm(std::span<const float> got,
                                       std::span<const float> want,
                                       double tolerance,
                                       const std::string& what);

/// splitmix64: small deterministic RNG for input generation (keeps every
/// benchmark's dataset reproducible across runs and platforms).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  /// Uniform float in [0, 1).
  float uniform() {
    return static_cast<float>(next() >> 40) * (1.0f / 16777216.0f);
  }
  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }
  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

 private:
  std::uint64_t state_;
};

/// FNV-1a over a typed output vector, for Dwarf::result_signature
/// implementations.  Byte-exact: two runs hash equal iff every output
/// element is bit-identical (NaN payloads and signed zeros included).
template <typename T>
[[nodiscard]] std::uint64_t hash_result(std::span<const T> data,
                                        std::uint64_t seed = 0xcbf29ce484222325ull) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* bytes = reinterpret_cast<const unsigned char*>(data.data());
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < data.size_bytes(); ++i) {
    h = (h ^ bytes[i]) * 0x100000001b3ull;
  }
  return h;
}

/// A benchmark in the suite.  Lifecycle:
///   setup(size)  -- generate host-side input (device independent)
///   bind(ctx,q)  -- allocate device buffers and enqueue initial transfers
///   run()        -- enqueue one application iteration's kernels (§2: the
///                   harness loops this for >= 2 s)
///   finish()     -- read results back
///   validate()   -- compare with the serial reference
/// bind/run/finish may be repeated for multiple devices after one setup().
class Dwarf {
 public:
  virtual ~Dwarf() = default;

  /// Benchmark id as used in the paper's tables ("kmeans", "lud", ...).
  [[nodiscard]] virtual std::string name() const = 0;
  /// The Berkeley dwarf the benchmark represents ("MapReduce", ...).
  [[nodiscard]] virtual std::string berkeley_dwarf() const = 0;
  /// Sizes the benchmark supports (nqueens: one size; hmm: tiny validated).
  [[nodiscard]] virtual std::vector<ProblemSize> supported_sizes() const {
    return {kAllSizes, kAllSizes + 4};
  }
  /// The Table 2 scale parameter cell for a size (e.g. "65600", "1152x864").
  [[nodiscard]] virtual std::string scale_parameter(ProblemSize s) const = 0;
  /// Device-side footprint in bytes, from the benchmark's working-set
  /// equation (verified against Context::allocated_bytes in tests).
  [[nodiscard]] virtual std::size_t footprint_bytes(ProblemSize s) const = 0;

  virtual void setup(ProblemSize size) = 0;
  virtual void bind(xcl::Context& ctx, xcl::Queue& q) = 0;
  virtual void run() = 0;
  virtual void finish() = 0;
  [[nodiscard]] virtual Validation validate() = 0;
  /// Releases device buffers (must leave the dwarf re-bindable).
  virtual void unbind() = 0;

  /// Order-sensitive hash over the benchmark's host-side output vectors
  /// (valid after finish(); 0 when the dwarf does not implement it).
  /// Unlike validate(), which tolerates rounding, equal signatures mean
  /// bit-identical results -- the span-tier equivalence tests pin the span
  /// kernels to the per-item reference path with it.
  [[nodiscard]] virtual std::uint64_t result_signature() const { return 0; }

  /// Optional single-iteration memory trace for the cache simulator
  /// (§4.4: used to verify size classes land in the intended cache level).
  /// Emits into a batched (optionally line-coalescing) writer so large
  /// traces never materialise and never pay a per-access callback.
  /// Overriders should add `using Dwarf::stream_trace;` so the legacy
  /// per-access overload below stays visible on the concrete type.
  virtual void stream_trace(sim::TraceWriter& out) const { (void)out; }

  /// Exact (or best-effort) number of accesses stream_trace will emit for
  /// the current setup; 0 when unknown or trace-less.  Lets memory_trace()
  /// reserve and lets callers refuse oversized replays up front.
  [[nodiscard]] virtual std::size_t trace_size_hint() const { return 0; }

  /// Legacy per-access streaming interface, adapted onto the batched one.
  void stream_trace(
      const std::function<void(const sim::MemAccess&)>& sink) const {
    sim::FunctionTraceSink fn_sink(sink);
    sim::TraceWriter writer(fn_sink);
    stream_trace(writer);
  }

  /// Convenience: collects stream_trace into a vector (small sizes only).
  [[nodiscard]] sim::MemoryTrace memory_trace() const {
    sim::MemoryTrace t;
    t.reserve(trace_size_hint());
    sim::VectorTraceSink vec_sink(t);
    sim::TraceWriter writer(vec_sink);
    stream_trace(writer);
    writer.finish();
    return t;
  }
};

}  // namespace eod::dwarfs
