#include "dwarfs/common.hpp"

#include <cmath>
#include <sstream>

namespace eod::dwarfs {

const char* to_string(ProblemSize s) noexcept {
  switch (s) {
    case ProblemSize::kTiny:
      return "tiny";
    case ProblemSize::kSmall:
      return "small";
    case ProblemSize::kMedium:
      return "medium";
    case ProblemSize::kLarge:
      return "large";
  }
  return "unknown";
}

std::optional<ProblemSize> parse_problem_size(
    const std::string& name) noexcept {
  if (name == "tiny") return ProblemSize::kTiny;
  if (name == "small") return ProblemSize::kSmall;
  if (name == "medium") return ProblemSize::kMedium;
  if (name == "large") return ProblemSize::kLarge;
  return std::nullopt;
}

double rel_l2_diff(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) return HUGE_VAL;
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    num += d * d;
    den += static_cast<double>(b[i]) * b[i];
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : HUGE_VAL;
  return std::sqrt(num / den);
}

double max_abs_diff(std::span<const float> a, std::span<const float> b) {
  if (a.size() != b.size()) return HUGE_VAL;
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(static_cast<double>(a[i]) - b[i]));
  }
  return m;
}

Validation validate_norm(std::span<const float> got,
                         std::span<const float> want, double tolerance,
                         const std::string& what) {
  Validation v;
  v.error = rel_l2_diff(got, want);
  v.ok = v.error <= tolerance;
  std::ostringstream os;
  os << what << ": relative L2 difference " << v.error << " (tolerance "
     << tolerance << ")";
  v.detail = os.str();
  return v;
}

}  // namespace eod::dwarfs
