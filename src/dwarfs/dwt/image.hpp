// Image support for the dwt benchmark: PPM (P6) / PGM (P5) binary IO, a
// procedural "gum leaf" generator standing in for the paper's photograph,
// and an ImageMagick-equivalent box resampler used to produce the four
// problem-size images (§4.4.3: 3648x2736 down-sampled to 80x60-scale).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eod::dwarfs {

/// 8-bit grayscale raster.
struct GrayImage {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::uint8_t> pixels;  // row-major, width*height

  [[nodiscard]] std::uint8_t at(std::size_t x, std::size_t y) const {
    return pixels[y * width + x];
  }
};

/// Procedurally renders a leaf-like grayscale test image (midrib, veins,
/// serrated margin, background gradient): structured content with both
/// smooth regions and edges, like the gum-leaf photo the paper uses.
[[nodiscard]] GrayImage generate_leaf_image(std::size_t width,
                                            std::size_t height);

/// Area-averaging (box) resample, as ImageMagick's -resize does for
/// downscaling.
[[nodiscard]] GrayImage box_resize(const GrayImage& src, std::size_t width,
                                   std::size_t height);

/// Binary PGM (P5) writer/reader.
void save_pgm(const GrayImage& img, const std::string& path);
[[nodiscard]] GrayImage load_pgm(const std::string& path);

/// Binary PPM (P6) writer/reader; load converts to grayscale by luminance
/// (the dwt benchmark consumes grayscale, per §4.4.3).
void save_ppm_rgb_from_gray(const GrayImage& img, const std::string& path);
[[nodiscard]] GrayImage load_ppm_as_gray(const std::string& path);

/// Packs DWT coefficient quadrants into a visually tiled grayscale image
/// (the paper stores "Portable GrayMap images of the resulting DWT
/// coefficients in a visual tiled fashion").
[[nodiscard]] GrayImage tile_coefficients(const std::vector<float>& coeffs,
                                          std::size_t width,
                                          std::size_t height);

}  // namespace eod::dwarfs
