#include "dwarfs/dwt/dwt.hpp"

#include <cmath>

#include "xcl/kernel.hpp"

namespace eod::dwarfs {

Dwt::Extent Dwt::extent_for(ProblemSize s) {
  switch (s) {
    case ProblemSize::kTiny:
      return {72, 54};
    case ProblemSize::kSmall:
      return {200, 150};
    case ProblemSize::kMedium:
      return {1152, 864};
    case ProblemSize::kLarge:
      return {3648, 2736};
  }
  return {};
}

std::string Dwt::scale_parameter(ProblemSize s) const {
  const Extent e = extent_for(s);
  return std::to_string(e.width) + "x" + std::to_string(e.height);
}

void Dwt::setup(ProblemSize size) {
  configure(extent_for(size), kLevels);
}

void Dwt::configure(Extent extent, unsigned levels) {
  require(extent.width >= 2 && extent.height >= 2,
          xcl::Status::kInvalidValue, "dwt image must be at least 2x2");
  require(levels >= 1, xcl::Status::kInvalidValue,
          "dwt needs at least one level");
  extent_ = extent;
  levels_ = levels;
  // The paper's large image is the original photo; smaller classes are
  // down-sampled with ImageMagick.  Mirror that: synthesize the full-size
  // leaf, then box-resize to the requested dimensions.
  const Extent full = extent_for(ProblemSize::kLarge);
  GrayImage leaf = generate_leaf_image(full.width, full.height);
  if (extent_.width != full.width || extent_.height != full.height) {
    leaf = box_resize(leaf, extent_.width, extent_.height);
  }
  input_.resize(extent_.width * extent_.height);
  for (std::size_t i = 0; i < input_.size(); ++i) {
    input_[i] = static_cast<float>(leaf.pixels[i]);
  }
  output_.assign(input_.size(), 0.0f);
}

void Dwt::bind(xcl::Context& ctx, xcl::Queue& q) {
  queue_ = &q;
  data_buf_.emplace(ctx, input_.size() * sizeof(float));
  temp_buf_.emplace(ctx, input_.size() * sizeof(float));
}

void Dwt::enqueue_level(std::size_t lw, std::size_t lh) {
  const std::size_t stride = extent_.width;
  auto data = data_buf_->access<float>("data");
  auto temp = temp_buf_->access<float>("temp");

  // Horizontal pass: one work-item per row, deinterleave into temp.  Fully
  // indexed (no row-base pointers) so the checked tier sees every access.
  xcl::Kernel horiz("dwt_horizontal", [=](xcl::WorkItem& it) {
    const std::size_t r = it.global_id(0);
    if (r >= lh) return;
    const std::size_t row = r * stride;
    const std::size_t n = lw;
    const std::size_t ns = (n + 1) / 2;
    const std::size_t nd = n / 2;
    for (std::size_t i = 0; i < nd; ++i) {
      const std::size_t rr = (2 * i + 2 <= n - 1) ? 2 * i + 2 : n - 2;
      temp[row + ns + i] =
          data[row + 2 * i + 1] -
          0.5f * (data[row + 2 * i] + data[row + rr]);
    }
    for (std::size_t i = 0; i < ns; ++i) {
      const std::size_t dl = i == 0 ? 0 : i - 1;
      const std::size_t dr = i < nd ? i : nd - 1;
      temp[row + i] =
          data[row + 2 * i] +
          0.25f * (temp[row + ns + dl] + temp[row + ns + dr]);
    }
  });

  // Span tier: a run of whole rows (or columns below) per call.  data and
  // temp are distinct buffers, so the lifting loops run over restrict-
  // qualified pointers.
  horiz.span([=](std::size_t begin, std::size_t end) {
    const float* EOD_RESTRICT dp = data.data();
    float* EOD_RESTRICT tp = temp.data();
    const std::size_t n = lw;
    const std::size_t ns = (n + 1) / 2;
    const std::size_t nd = n / 2;
    for (std::size_t r = begin, last = std::min(end, lh); r < last; ++r) {
      const float* EOD_RESTRICT in_row = dp + r * stride;
      float* EOD_RESTRICT out_row = tp + r * stride;
      for (std::size_t i = 0; i < nd; ++i) {
        const std::size_t rr = (2 * i + 2 <= n - 1) ? 2 * i + 2 : n - 2;
        out_row[ns + i] =
            in_row[2 * i + 1] - 0.5f * (in_row[2 * i] + in_row[rr]);
      }
      for (std::size_t i = 0; i < ns; ++i) {
        const std::size_t dl = i == 0 ? 0 : i - 1;
        const std::size_t dr = i < nd ? i : nd - 1;
        out_row[i] =
            in_row[2 * i] + 0.25f * (out_row[ns + dl] + out_row[ns + dr]);
      }
    }
  });

  // Vertical pass: one work-item per column, temp -> data.
  xcl::Kernel vert("dwt_vertical", [=](xcl::WorkItem& it) {
    const std::size_t c = it.global_id(0);
    if (c >= lw) return;
    const std::size_t n = lh;
    const std::size_t ns = (n + 1) / 2;
    const std::size_t nd = n / 2;
    for (std::size_t i = 0; i < nd; ++i) {
      const std::size_t rr = (2 * i + 2 <= n - 1) ? 2 * i + 2 : n - 2;
      data[(ns + i) * stride + c] =
          temp[(2 * i + 1) * stride + c] -
          0.5f * (temp[2 * i * stride + c] + temp[rr * stride + c]);
    }
    for (std::size_t i = 0; i < ns; ++i) {
      const std::size_t dl = i == 0 ? 0 : i - 1;
      const std::size_t dr = i < nd ? i : nd - 1;
      data[i * stride + c] =
          temp[2 * i * stride + c] + 0.25f * (data[(ns + dl) * stride + c] +
                                              data[(ns + dr) * stride + c]);
    }
  });

  vert.span([=](std::size_t begin, std::size_t end) {
    float* EOD_RESTRICT dp = data.data();
    const float* EOD_RESTRICT tp = temp.data();
    const std::size_t n = lh;
    const std::size_t ns = (n + 1) / 2;
    const std::size_t nd = n / 2;
    for (std::size_t c = begin, last = std::min(end, lw); c < last; ++c) {
      for (std::size_t i = 0; i < nd; ++i) {
        const std::size_t rr = (2 * i + 2 <= n - 1) ? 2 * i + 2 : n - 2;
        dp[(ns + i) * stride + c] =
            tp[(2 * i + 1) * stride + c] -
            0.5f * (tp[2 * i * stride + c] + tp[rr * stride + c]);
      }
      for (std::size_t i = 0; i < ns; ++i) {
        const std::size_t dl = i == 0 ? 0 : i - 1;
        const std::size_t dr = i < nd ? i : nd - 1;
        dp[i * stride + c] =
            tp[2 * i * stride + c] + 0.25f * (dp[(ns + dl) * stride + c] +
                                              dp[(ns + dr) * stride + c]);
      }
    }
  });

  const double cells = static_cast<double>(lw) * static_cast<double>(lh);
  xcl::WorkloadProfile hprof;
  hprof.flops = cells * 4.0;
  hprof.int_ops = cells * 4.0;
  hprof.bytes_read = cells * 1.5 * sizeof(float);
  hprof.bytes_written = cells * sizeof(float);
  hprof.working_set_bytes =
      static_cast<double>(2 * input_.size()) * sizeof(float);
  hprof.pattern = xcl::AccessPattern::kStreaming;

  xcl::WorkloadProfile vprof = hprof;
  vprof.pattern = xcl::AccessPattern::kStrided;  // column walks

  const std::size_t hwg = std::min<std::size_t>(64, lh);
  queue_->enqueue(horiz, xcl::NDRange((lh + hwg - 1) / hwg * hwg, hwg),
                  hprof);
  const std::size_t vwg = std::min<std::size_t>(64, lw);
  queue_->enqueue(vert, xcl::NDRange((lw + vwg - 1) / vwg * vwg, vwg),
                  vprof);
}

void Dwt::run() {
  queue_->enqueue_write<float>(*data_buf_, input_);
  std::size_t lw = extent_.width;
  std::size_t lh = extent_.height;
  for (unsigned level = 0; level < levels_ && lw >= 2 && lh >= 2; ++level) {
    enqueue_level(lw, lh);
    lw = (lw + 1) / 2;
    lh = (lh + 1) / 2;
  }
}

void Dwt::finish() {
  queue_->enqueue_read<float>(*data_buf_, std::span(output_));
}

void Dwt::stream_trace(sim::TraceWriter& out) const {
  // The lifting passes in kernel order: horizontal rows (streaming reads,
  // deinterleaved writes into temp), then vertical column walks.
  const std::size_t stride = extent_.width;
  const std::uint64_t data_base = 0x10000;
  const std::uint64_t temp_base =
      data_base + input_.size() * sizeof(float);
  std::size_t lw = extent_.width;
  std::size_t lh = extent_.height;
  for (unsigned level = 0; level < levels_ && lw >= 2 && lh >= 2;
       ++level) {
    for (std::size_t r = 0; r < lh; ++r) {
      for (std::size_t cidx = 0; cidx < lw; ++cidx) {
        out.emit(data_base + (r * stride + cidx) * 4, 4, false);
        out.emit(temp_base + (r * stride + cidx) * 4, 4, true);
      }
    }
    for (std::size_t cidx = 0; cidx < lw; ++cidx) {
      for (std::size_t r = 0; r < lh; ++r) {
        out.emit(temp_base + (r * stride + cidx) * 4, 4, false);
        out.emit(data_base + (r * stride + cidx) * 4, 4, true);
      }
    }
    lw = (lw + 1) / 2;
    lh = (lh + 1) / 2;
  }
}

std::size_t Dwt::trace_size_hint() const {
  std::size_t total = 0;
  std::size_t lw = extent_.width;
  std::size_t lh = extent_.height;
  for (unsigned level = 0; level < levels_ && lw >= 2 && lh >= 2;
       ++level) {
    total += 4 * lw * lh;
    lw = (lw + 1) / 2;
    lh = (lh + 1) / 2;
  }
  return total;
}

void Dwt::reference_dwt53(std::vector<double>& data, std::size_t width,
                          std::size_t height, unsigned levels) {
  std::vector<double> temp(data.size());
  std::size_t lw = width;
  std::size_t lh = height;
  for (unsigned level = 0; level < levels && lw >= 2 && lh >= 2; ++level) {
    // Horizontal.
    for (std::size_t r = 0; r < lh; ++r) {
      const double* in = &data[r * width];
      double* out = &temp[r * width];
      const std::size_t n = lw;
      const std::size_t ns = (n + 1) / 2;
      const std::size_t nd = n / 2;
      for (std::size_t i = 0; i < nd; ++i) {
        const std::size_t rr = (2 * i + 2 <= n - 1) ? 2 * i + 2 : n - 2;
        out[ns + i] = in[2 * i + 1] - 0.5 * (in[2 * i] + in[rr]);
      }
      for (std::size_t i = 0; i < ns; ++i) {
        const std::size_t dl = i == 0 ? 0 : i - 1;
        const std::size_t dr = i < nd ? i : nd - 1;
        out[i] = in[2 * i] + 0.25 * (out[ns + dl] + out[ns + dr]);
      }
    }
    // Vertical.
    for (std::size_t c = 0; c < lw; ++c) {
      const std::size_t n = lh;
      const std::size_t ns = (n + 1) / 2;
      const std::size_t nd = n / 2;
      for (std::size_t i = 0; i < nd; ++i) {
        const std::size_t rr = (2 * i + 2 <= n - 1) ? 2 * i + 2 : n - 2;
        data[(ns + i) * width + c] =
            temp[(2 * i + 1) * width + c] -
            0.5 * (temp[2 * i * width + c] + temp[rr * width + c]);
      }
      for (std::size_t i = 0; i < ns; ++i) {
        const std::size_t dl = i == 0 ? 0 : i - 1;
        const std::size_t dr = i < nd ? i : nd - 1;
        data[i * width + c] =
            temp[2 * i * width + c] +
            0.25 * (data[(ns + dl) * width + c] +
                    data[(ns + dr) * width + c]);
      }
    }
    lw = (lw + 1) / 2;
    lh = (lh + 1) / 2;
  }
}

void Dwt::reference_idwt53(std::vector<double>& data, std::size_t width,
                           std::size_t height, unsigned levels) {
  // Collect the level extents, then invert from the deepest level out.
  std::vector<std::pair<std::size_t, std::size_t>> exts;
  std::size_t lw = width;
  std::size_t lh = height;
  for (unsigned level = 0; level < levels && lw >= 2 && lh >= 2; ++level) {
    exts.emplace_back(lw, lh);
    lw = (lw + 1) / 2;
    lh = (lh + 1) / 2;
  }
  std::vector<double> temp(data.size());
  for (auto it = exts.rbegin(); it != exts.rend(); ++it) {
    const auto [w, h] = *it;
    // Inverse vertical: data -> temp (interleaved rows).
    for (std::size_t c = 0; c < w; ++c) {
      const std::size_t n = h;
      const std::size_t ns = (n + 1) / 2;
      const std::size_t nd = n / 2;
      // Undo update.
      std::vector<double> x(n);
      for (std::size_t i = 0; i < ns; ++i) {
        const std::size_t dl = i == 0 ? 0 : i - 1;
        const std::size_t dr = i < nd ? i : nd - 1;
        x[2 * i] = data[i * width + c] -
                   0.25 * (data[(ns + dl) * width + c] +
                           data[(ns + dr) * width + c]);
      }
      // Undo predict (x[rr] is an even sample recovered just above).
      for (std::size_t i = 0; i < nd; ++i) {
        const std::size_t rr = (2 * i + 2 <= n - 1) ? 2 * i + 2 : n - 2;
        x[2 * i + 1] = data[(ns + i) * width + c] +
                       0.5 * (x[2 * i] + x[rr]);
      }
      for (std::size_t i = 0; i < n; ++i) temp[i * width + c] = x[i];
    }
    // Inverse horizontal: temp -> data.
    for (std::size_t r = 0; r < h; ++r) {
      const double* in = &temp[r * width];
      double* out = &data[r * width];
      const std::size_t n = w;
      const std::size_t ns = (n + 1) / 2;
      const std::size_t nd = n / 2;
      std::vector<double> x(n);
      for (std::size_t i = 0; i < ns; ++i) {
        const std::size_t dl = i == 0 ? 0 : i - 1;
        const std::size_t dr = i < nd ? i : nd - 1;
        x[2 * i] = in[i] - 0.25 * (in[ns + dl] + in[ns + dr]);
      }
      for (std::size_t i = 0; i < nd; ++i) {
        const std::size_t rr = (2 * i + 2 <= n - 1) ? 2 * i + 2 : n - 2;
        x[2 * i + 1] = in[ns + i] + 0.5 * (x[2 * i] + x[rr]);
      }
      for (std::size_t i = 0; i < n; ++i) out[i] = x[i];
    }
  }
}

Validation Dwt::validate() {
  std::vector<double> ref(input_.begin(), input_.end());
  reference_dwt53(ref, extent_.width, extent_.height, levels_);
  std::vector<float> want(ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    want[i] = static_cast<float>(ref[i]);
  }
  return validate_norm(output_, want, 1e-4, "dwt CDF 5/3 coefficients");
}

void Dwt::unbind() {
  temp_buf_.reset();
  data_buf_.reset();
  queue_ = nullptr;
}

}  // namespace eod::dwarfs
