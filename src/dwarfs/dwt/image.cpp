#include "dwarfs/dwt/image.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace eod::dwarfs {

GrayImage generate_leaf_image(std::size_t width, std::size_t height) {
  GrayImage img;
  img.width = width;
  img.height = height;
  img.pixels.resize(width * height);

  const double w = static_cast<double>(width);
  const double h = static_cast<double>(height);
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      // Normalised coordinates in [-1, 1] with the leaf axis horizontal.
      const double u = 2.0 * (static_cast<double>(x) + 0.5) / w - 1.0;
      const double v = 2.0 * (static_cast<double>(y) + 0.5) / h - 1.0;

      // Background: soft diagonal gradient.
      double val = 190.0 + 30.0 * (u + v) * 0.5;

      // Leaf blade: lens shape |v| < blade(u).
      const double blade =
          0.62 * std::sqrt(std::max(0.0, 1.0 - u * u)) *
          (1.0 + 0.12 * std::sin(9.0 * M_PI * u));  // serrated margin
      if (std::abs(v) < blade) {
        val = 95.0 + 40.0 * std::abs(v) / (blade + 1e-9);
        // Midrib.
        if (std::abs(v) < 0.02) val = 60.0;
        // Lateral veins at regular angles off the midrib.
        const double vein = std::abs(
            std::sin(14.0 * (u + 1.0) * M_PI) * 0.5 * (1.0 - std::abs(v)));
        if (vein > 0.46 && std::abs(v) > 0.02) val -= 25.0;
      }
      // Deterministic fine texture (hash noise).
      const std::uint64_t n =
          (x * 0x9e3779b97f4a7c15ull) ^ (y * 0xbf58476d1ce4e5b9ull);
      val += static_cast<double>((n >> 33) & 0xF) - 7.5;

      img.pixels[y * width + x] =
          static_cast<std::uint8_t>(std::clamp(val, 0.0, 255.0));
    }
  }
  return img;
}

GrayImage box_resize(const GrayImage& src, std::size_t width,
                     std::size_t height) {
  if (width == 0 || height == 0) {
    throw std::invalid_argument("box_resize target must be non-empty");
  }
  GrayImage dst;
  dst.width = width;
  dst.height = height;
  dst.pixels.resize(width * height);
  const double sx = static_cast<double>(src.width) / width;
  const double sy = static_cast<double>(src.height) / height;
  for (std::size_t y = 0; y < height; ++y) {
    const auto y0 = static_cast<std::size_t>(y * sy);
    const auto y1 = std::max<std::size_t>(
        y0 + 1, std::min(src.height, static_cast<std::size_t>(
                                         std::ceil((y + 1) * sy))));
    for (std::size_t x = 0; x < width; ++x) {
      const auto x0 = static_cast<std::size_t>(x * sx);
      const auto x1 = std::max<std::size_t>(
          x0 + 1, std::min(src.width, static_cast<std::size_t>(
                                          std::ceil((x + 1) * sx))));
      double acc = 0.0;
      std::size_t count = 0;
      for (std::size_t yy = y0; yy < y1; ++yy) {
        for (std::size_t xx = x0; xx < x1; ++xx) {
          acc += src.at(xx, yy);
          ++count;
        }
      }
      dst.pixels[y * width + x] = static_cast<std::uint8_t>(
          std::clamp(acc / std::max<std::size_t>(1, count), 0.0, 255.0));
    }
  }
  return dst;
}

namespace {

void skip_ws_and_comments(std::istream& in) {
  for (;;) {
    const int c = in.peek();
    if (c == '#') {
      std::string line;
      std::getline(in, line);
    } else if (std::isspace(c)) {
      in.get();
    } else {
      return;
    }
  }
}

void read_header(std::istream& in, const char* magic, std::size_t& w,
                 std::size_t& h, unsigned& maxval) {
  std::string m;
  in >> m;
  if (m != magic) throw std::runtime_error("bad PNM magic: " + m);
  skip_ws_and_comments(in);
  in >> w;
  skip_ws_and_comments(in);
  in >> h;
  skip_ws_and_comments(in);
  in >> maxval;
  in.get();  // single whitespace before raster
  if (!in || maxval == 0 || maxval > 255) {
    throw std::runtime_error("unsupported PNM header");
  }
}

}  // namespace

void save_pgm(const GrayImage& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "P5\n" << img.width << ' ' << img.height << "\n255\n";
  out.write(reinterpret_cast<const char*>(img.pixels.data()),
            static_cast<std::streamsize>(img.pixels.size()));
}

GrayImage load_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  GrayImage img;
  unsigned maxval = 0;
  read_header(in, "P5", img.width, img.height, maxval);
  img.pixels.resize(img.width * img.height);
  in.read(reinterpret_cast<char*>(img.pixels.data()),
          static_cast<std::streamsize>(img.pixels.size()));
  if (!in) throw std::runtime_error("truncated PGM: " + path);
  return img;
}

void save_ppm_rgb_from_gray(const GrayImage& img, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "P6\n" << img.width << ' ' << img.height << "\n255\n";
  for (const std::uint8_t g : img.pixels) {
    // Leaf-toned RGB so the file looks like a photo, grayscale on load.
    const char rgb[3] = {static_cast<char>(g / 2), static_cast<char>(g),
                         static_cast<char>(g / 3)};
    out.write(rgb, 3);
  }
}

GrayImage load_ppm_as_gray(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  GrayImage img;
  unsigned maxval = 0;
  read_header(in, "P6", img.width, img.height, maxval);
  img.pixels.resize(img.width * img.height);
  std::vector<std::uint8_t> rgb(img.pixels.size() * 3);
  in.read(reinterpret_cast<char*>(rgb.data()),
          static_cast<std::streamsize>(rgb.size()));
  if (!in) throw std::runtime_error("truncated PPM: " + path);
  for (std::size_t i = 0; i < img.pixels.size(); ++i) {
    // BT.601 luminance.
    const double y = 0.299 * rgb[3 * i] + 0.587 * rgb[3 * i + 1] +
                     0.114 * rgb[3 * i + 2];
    img.pixels[i] = static_cast<std::uint8_t>(std::clamp(y, 0.0, 255.0));
  }
  return img;
}

GrayImage tile_coefficients(const std::vector<float>& coeffs,
                            std::size_t width, std::size_t height) {
  if (coeffs.size() != width * height) {
    throw std::invalid_argument("coefficient raster size mismatch");
  }
  GrayImage img;
  img.width = width;
  img.height = height;
  img.pixels.resize(coeffs.size());
  // The transform already stores quadrants tiled (LL top-left, detail
  // bands around it); map coefficients to 8-bit with a log stretch so the
  // detail bands are visible.
  float max_abs = 1.0f;
  for (const float c : coeffs) max_abs = std::max(max_abs, std::fabs(c));
  const double scale = 255.0 / std::log1p(static_cast<double>(max_abs));
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    const double v = std::log1p(std::fabs(static_cast<double>(coeffs[i])));
    img.pixels[i] = static_cast<std::uint8_t>(
        std::clamp(v * scale, 0.0, 255.0));
  }
  return img;
}

}  // namespace eod::dwarfs
