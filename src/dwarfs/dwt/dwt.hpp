// 2-D discrete wavelet transform -- the second Spectral Methods dwarf,
// added by the paper from Rodinia "with modifications to improve
// portability" (§2, §4.4.3).
//
// CDF 5/3 lifting (predict + update), three decomposition levels (Table 3:
// -l 3), separable: a horizontal pass then a vertical pass per level, with
// the low-pass quadrant recursing.  Input images are synthesized by the
// leaf generator and box-resized to the Table 2 dimensions.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "dwarfs/common.hpp"
#include "dwarfs/dwt/image.hpp"

namespace eod::dwarfs {

class Dwt final : public Dwarf {
 public:
  static constexpr unsigned kLevels = 3;

  struct Extent {
    std::size_t width = 0;
    std::size_t height = 0;
  };
  /// Table 2, dwt row: image dimensions per size class.
  [[nodiscard]] static Extent extent_for(ProblemSize s);

  /// Custom image extent and decomposition depth (-l); setup(size) is the
  /// Table 2 preset configure(extent_for(size), kLevels).
  void configure(Extent extent, unsigned levels);

  [[nodiscard]] std::string name() const override { return "dwt"; }
  [[nodiscard]] std::string berkeley_dwarf() const override {
    return "Spectral Methods";
  }
  [[nodiscard]] std::string scale_parameter(ProblemSize s) const override;
  [[nodiscard]] std::size_t footprint_bytes(ProblemSize s) const override {
    const Extent e = extent_for(s);
    return 2 * e.width * e.height * sizeof(float);  // data + staging
  }

  using Dwarf::stream_trace;
  void stream_trace(sim::TraceWriter& out) const override;
  [[nodiscard]] std::size_t trace_size_hint() const override;

  void setup(ProblemSize size) override;
  void bind(xcl::Context& ctx, xcl::Queue& q) override;
  void run() override;
  void finish() override;
  [[nodiscard]] Validation validate() override;
  void unbind() override;

  /// Serial reference: one full forward transform in double precision.
  static void reference_dwt53(std::vector<double>& data, std::size_t width,
                              std::size_t height, unsigned levels);
  /// Serial inverse (used by tests for the perfect-reconstruction
  /// property).
  static void reference_idwt53(std::vector<double>& data, std::size_t width,
                               std::size_t height, unsigned levels);

  /// The transformed coefficients (valid after finish()).
  [[nodiscard]] const std::vector<float>& coefficients() const noexcept {
    return output_;
  }
  [[nodiscard]] Extent extent() const noexcept { return extent_; }

  /// Transformed plane (all levels applied), byte-exact.
  [[nodiscard]] std::uint64_t result_signature() const override {
    return hash_result<float>(output_);
  }

 private:
  void enqueue_level(std::size_t lw, std::size_t lh);

  Extent extent_;
  unsigned levels_ = kLevels;
  std::vector<float> input_;   // grayscale pixels as float
  std::vector<float> output_;

  xcl::Queue* queue_ = nullptr;
  std::optional<xcl::Buffer> data_buf_;
  std::optional<xcl::Buffer> temp_buf_;
};

}  // namespace eod::dwarfs
