// b_eff -- effective interconnect bandwidth, the communication dwarf.
//
// Modeled on the HPC Challenge / Linpack-suite b_eff benchmark: sweep
// power-of-two message sizes and measure the achieved bandwidth of the
// host<->device link in three patterns -- unidirectional write (H2D),
// unidirectional read (D2H), and bidirectional echo (write immediately
// followed by the matching read, sharing the transfer lane).  Every modeled
// link is latency + size/bandwidth, so the achieved-bandwidth curve rises
// from latency-bound small messages and saturates at the link's nominal
// rate; BENCH_multidev.json records that curve.
//
// The Dwarf lifecycle binds one device, so this dwarf covers that device's
// host link only.  Device-to-device patterns (the b_eff ring over peer
// copies) need several queues and live in harness::ring_sweep, which
// beff_app and bench/micro_multidev drive on top of the same sweep grid.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "dwarfs/common.hpp"

namespace eod::dwarfs {

/// One message size of the sweep, with achieved bandwidth per pattern.
struct BeffPoint {
  std::size_t bytes = 0;
  double write_gbs = 0.0;  ///< unidirectional host -> device
  double read_gbs = 0.0;   ///< unidirectional device -> host
  double bi_gbs = 0.0;     ///< write + read echo, both directions counted
};

class Beff final : public Dwarf {
 public:
  /// Smallest message of the sweep; sizes double up to max_message_for().
  static constexpr std::size_t kMinMessage = 1024;

  /// Largest message per size class (tiny 64 KiB ... large 32 MiB).
  [[nodiscard]] static std::size_t max_message_for(ProblemSize s);

  /// The power-of-two sweep grid [kMinMessage, max_bytes].
  [[nodiscard]] static std::vector<std::size_t> sweep_sizes(
      std::size_t max_bytes);

  /// Custom sweep ceiling (power of two, >= kMinMessage); setup(size) is
  /// the preset configure(max_message_for(size)).
  void configure(std::size_t max_bytes);

  [[nodiscard]] std::string name() const override { return "beff"; }
  [[nodiscard]] std::string berkeley_dwarf() const override {
    return "Communication";
  }
  [[nodiscard]] std::string scale_parameter(ProblemSize s) const override {
    return std::to_string(max_message_for(s));
  }
  /// One device-resident message buffer of the largest message.
  [[nodiscard]] std::size_t footprint_bytes(ProblemSize s) const override {
    return max_message_for(s);
  }

  using Dwarf::stream_trace;
  void stream_trace(sim::TraceWriter& out) const override;
  [[nodiscard]] std::size_t trace_size_hint() const override;

  void setup(ProblemSize size) override;
  void bind(xcl::Context& ctx, xcl::Queue& q) override;
  void run() override;
  void finish() override;
  [[nodiscard]] Validation validate() override;
  void unbind() override;

  /// Echoed payload, byte-exact.
  [[nodiscard]] std::uint64_t result_signature() const override {
    return hash_result<std::uint8_t>(recv_);
  }

  /// The bandwidth curve of the last run() (one entry per sweep size,
  /// strictly increasing bytes).
  [[nodiscard]] const std::vector<BeffPoint>& points() const noexcept {
    return points_;
  }

 private:
  std::size_t max_bytes_ = 0;
  std::vector<std::uint8_t> send_;
  std::vector<std::uint8_t> recv_;
  std::vector<BeffPoint> points_;

  xcl::Queue* queue_ = nullptr;
  std::optional<xcl::Buffer> msg_buf_;
};

}  // namespace eod::dwarfs
