#include "dwarfs/beff/beff.hpp"

#include <sstream>

#include "xcl/event.hpp"

namespace eod::dwarfs {

namespace {

double achieved_gbs(std::size_t bytes, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return static_cast<double>(bytes) / seconds / 1e9;
}

double duration_s(const xcl::Event& e) {
  return e.modeled_end_s - e.modeled_start_s;
}

}  // namespace

std::size_t Beff::max_message_for(ProblemSize s) {
  switch (s) {
    case ProblemSize::kTiny:
      return 64 * 1024;
    case ProblemSize::kSmall:
      return 256 * 1024;
    case ProblemSize::kMedium:
      return 4 * 1024 * 1024;
    case ProblemSize::kLarge:
      return 32 * 1024 * 1024;
  }
  return 0;
}

std::vector<std::size_t> Beff::sweep_sizes(std::size_t max_bytes) {
  std::vector<std::size_t> sizes;
  for (std::size_t b = kMinMessage; b <= max_bytes; b *= 2) sizes.push_back(b);
  return sizes;
}

void Beff::setup(ProblemSize size) { configure(max_message_for(size)); }

void Beff::configure(std::size_t max_bytes) {
  require(max_bytes >= kMinMessage && (max_bytes & (max_bytes - 1)) == 0,
          xcl::Status::kInvalidValue,
          "beff sweep ceiling must be a power of two >= 1 KiB");
  max_bytes_ = max_bytes;
  SplitMix64 rng(0x62656666ull);  // "beff"
  send_.resize(max_bytes_);
  for (std::uint8_t& b : send_) b = static_cast<std::uint8_t>(rng.next());
  recv_.assign(max_bytes_, 0);
  points_.clear();
}

void Beff::bind(xcl::Context& ctx, xcl::Queue& q) {
  queue_ = &q;
  msg_buf_.emplace(ctx, max_bytes_);
}

void Beff::run() {
  // One echo (write then read) per message size.  The queue's transfer
  // lane serialises the two legs, exactly like a blocking ping-pong, so
  // the pair also times the bidirectional pattern: uni bandwidths come
  // from each leg's own modeled duration, bi from the round trip moving
  // 2 x bytes.  Messages grow monotonically, so after the sweep the
  // device buffer holds the full payload for finish() to echo back.
  points_.clear();
  for (const std::size_t bytes : sweep_sizes(max_bytes_)) {
    const xcl::Event w = queue_->enqueue_write<std::uint8_t>(
        *msg_buf_, std::span<const std::uint8_t>(send_.data(), bytes));
    const xcl::Event r = queue_->enqueue_read<std::uint8_t>(
        *msg_buf_, std::span<std::uint8_t>(recv_.data(), bytes));
    BeffPoint p;
    p.bytes = bytes;
    p.write_gbs = achieved_gbs(bytes, duration_s(w));
    p.read_gbs = achieved_gbs(bytes, duration_s(r));
    p.bi_gbs = achieved_gbs(2 * bytes, duration_s(w) + duration_s(r));
    points_.push_back(p);
  }
}

void Beff::finish() {
  queue_->enqueue_read<std::uint8_t>(*msg_buf_, std::span(recv_));
}

Validation Beff::validate() {
  std::size_t bad = 0;
  for (std::size_t i = 0; i < send_.size(); ++i) {
    if (recv_[i] != send_[i]) ++bad;
  }
  Validation v;
  v.error = static_cast<double>(bad);
  v.ok = bad == 0;
  std::ostringstream os;
  os << "beff: " << bad << " of " << send_.size()
     << " echoed bytes mismatch the payload";
  v.detail = os.str();
  return v;
}

void Beff::stream_trace(sim::TraceWriter& out) const {
  // Pure streaming at cache-line granularity: the device writes the
  // incoming payload once and reads it back once.
  const std::uint64_t base = 0x10000;
  out.emit_run(base, 64, max_bytes_ / 64, true);
  out.emit_run(base, 64, max_bytes_ / 64, false);
}

std::size_t Beff::trace_size_hint() const { return 2 * (max_bytes_ / 64); }

void Beff::unbind() {
  msg_buf_.reset();
  queue_ = nullptr;
}

}  // namespace eod::dwarfs
