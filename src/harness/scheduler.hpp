// Device selection / scheduling support -- the paper's original goal:
// "to discover methods for choosing the best device for a particular
// computational task, for example to support scheduling decisions under
// time and/or energy constraints" (§7).
//
// The benchmark suite supplies per-(task, device) predictions; the
// scheduler assigns a task list to a heterogeneous device pool minimising
// either makespan (LPT greedy) or total energy, optionally under a
// completion-deadline constraint.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dwarfs/common.hpp"
#include "xcl/device.hpp"

namespace eod::harness {

/// One unit of work to place: a benchmark instance at a problem size.
struct Task {
  std::string benchmark;
  dwarfs::ProblemSize size = dwarfs::ProblemSize::kSmall;
};

/// Model-predicted cost of running a task on a device.
struct Prediction {
  double seconds = 0.0;  ///< kernel + transfer time per application run
  double joules = 0.0;   ///< kernel energy per application run
};

/// Predicts one (task, device) cost via a model-only run through the suite.
[[nodiscard]] Prediction predict(const Task& task, xcl::Device& device);

enum class Objective {
  kMinimizeMakespan,  ///< finish everything as early as possible
  kMinimizeEnergy,    ///< spend as little energy as possible
};

struct Assignment {
  Task task;
  std::string device;
  Prediction prediction;
  double start_s = 0.0;  ///< scheduled start on the device's timeline
};

struct Schedule {
  std::vector<Assignment> assignments;
  double makespan_s = 0.0;
  double total_energy_j = 0.0;
  /// True when a deadline was requested and the schedule meets it.
  bool feasible = true;
};

/// Greedy scheduler: tasks sorted by their best-case duration (LPT), each
/// placed on the device minimising the objective.  With kMinimizeEnergy and
/// a deadline, energy-optimal placements that would break the deadline are
/// overridden by the fastest available device.
[[nodiscard]] Schedule schedule_tasks(
    const std::vector<Task>& tasks, const std::vector<xcl::Device*>& devices,
    Objective objective,
    std::optional<double> deadline_s = std::nullopt);

}  // namespace eod::harness
