#include "harness/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "dwarfs/registry.hpp"
#include "xcl/queue.hpp"

namespace eod::harness {

Prediction predict(const Task& task, xcl::Device& device) {
  auto dwarf = dwarfs::create_dwarf(task.benchmark);
  dwarf->setup(task.size);
  xcl::Context ctx(device);
  xcl::Queue queue(ctx);
  queue.set_functional(false);  // predictions come from the model alone
  dwarf->bind(ctx, queue);
  queue.clear_events();
  dwarf->run();
  Prediction p;
  p.seconds =
      queue.modeled_kernel_seconds() + queue.modeled_transfer_seconds();
  p.joules = queue.modeled_kernel_energy_j();
  dwarf->unbind();
  return p;
}

Schedule schedule_tasks(const std::vector<Task>& tasks,
                        const std::vector<xcl::Device*>& devices,
                        Objective objective,
                        std::optional<double> deadline_s) {
  Schedule out;
  if (devices.empty()) {
    out.feasible = tasks.empty();
    return out;
  }

  // Predict every (task, device) pair once.
  struct Candidate {
    Task task;
    std::vector<Prediction> per_device;
    double best_seconds = 0.0;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(tasks.size());
  for (const Task& t : tasks) {
    Candidate c;
    c.task = t;
    c.best_seconds = std::numeric_limits<double>::infinity();
    for (xcl::Device* d : devices) {
      c.per_device.push_back(predict(t, *d));
      c.best_seconds = std::min(c.best_seconds, c.per_device.back().seconds);
    }
    candidates.push_back(std::move(c));
  }
  // Longest-processing-time-first keeps the greedy makespan within 4/3 of
  // optimal; it is also a sensible order for the energy objective.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.best_seconds > b.best_seconds;
            });

  std::vector<double> device_busy(devices.size(), 0.0);
  for (const Candidate& c : candidates) {
    std::size_t pick = 0;
    double pick_score = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < devices.size(); ++i) {
      const Prediction& p = c.per_device[i];
      const double finish = device_busy[i] + p.seconds;
      double score = 0.0;
      switch (objective) {
        case Objective::kMinimizeMakespan:
          score = finish;
          break;
        case Objective::kMinimizeEnergy:
          score = p.joules;
          // Respect the deadline: placements that would blow it are
          // penalised out of contention when any alternative meets it.
          if (deadline_s.has_value() && finish > *deadline_s) {
            score += 1e12 + finish;
          }
          break;
      }
      if (score < pick_score) {
        pick_score = score;
        pick = i;
      }
    }
    Assignment a;
    a.task = c.task;
    a.device = devices[pick]->name();
    a.prediction = c.per_device[pick];
    a.start_s = device_busy[pick];
    device_busy[pick] += a.prediction.seconds;
    out.total_energy_j += a.prediction.joules;
    out.assignments.push_back(std::move(a));
  }
  out.makespan_s =
      *std::max_element(device_busy.begin(), device_busy.end());
  out.feasible = !deadline_s.has_value() || out.makespan_s <= *deadline_s;
  return out;
}

}  // namespace eod::harness
