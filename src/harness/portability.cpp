#include "harness/portability.hpp"

#include <algorithm>

#include "dwarfs/registry.hpp"
#include "sim/perf_model.hpp"
#include "sim/testbed.hpp"
#include "xcl/queue.hpp"

namespace eod::harness {

namespace {

/// Replays a benchmark's launch plan (model-only, launches recorded) and
/// returns both the achieved modeled time and the roofline-ideal time.
struct PlanCost {
  double achieved_s = 0.0;
  double ideal_s = 0.0;
};

PlanCost plan_cost(const std::string& benchmark, dwarfs::ProblemSize size,
                   xcl::Device& device) {
  auto dwarf = dwarfs::create_dwarf(benchmark);
  dwarf->setup(size);
  xcl::Context ctx(device);
  xcl::Queue queue(ctx);
  queue.set_functional(false);
  queue.set_record_launches(true);
  dwarf->bind(ctx, queue);
  queue.clear_events();
  dwarf->run();

  PlanCost cost;
  cost.achieved_s = queue.modeled_kernel_seconds();
  const sim::DevicePerfModel model(sim::spec_by_name(device.name()));
  for (const xcl::KernelLaunchStats& launch : queue.launches()) {
    cost.ideal_s += model.roofline_seconds(launch);
  }
  dwarf->unbind();
  return cost;
}

}  // namespace

double ideal_seconds(const std::string& benchmark, dwarfs::ProblemSize size,
                     xcl::Device& device) {
  return plan_cost(benchmark, size, device).ideal_s;
}

double pennycook_pp(const std::vector<double>& efficiencies) {
  if (efficiencies.empty()) return 0.0;
  double denom = 0.0;
  for (const double e : efficiencies) {
    if (e <= 0.0) return 0.0;  // failed on some device: PP is zero
    denom += 1.0 / e;
  }
  return static_cast<double>(efficiencies.size()) / denom;
}

PortabilityReport portability_report(
    const std::string& benchmark, dwarfs::ProblemSize size,
    const std::vector<xcl::Device*>& devices) {
  PortabilityReport report;
  report.benchmark = benchmark;
  report.size = size;
  std::vector<double> effs;
  for (xcl::Device* dev : devices) {
    const PlanCost cost = plan_cost(benchmark, size, *dev);
    DeviceEfficiency e;
    e.device = dev->name();
    e.ideal_seconds = cost.ideal_s;
    e.achieved_seconds = cost.achieved_s;
    report.devices.push_back(e);
    effs.push_back(e.efficiency());
  }
  report.performance_portability = pennycook_pp(effs);
  return report;
}

}  // namespace eod::harness
