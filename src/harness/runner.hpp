// The measurement engine: reproduces the paper's methodology (§2, §4.3).
//
//  * Each benchmark executes "in a loop for a minimum of two seconds, to
//    ensure that sampling ... was not significantly affected by operating
//    system noise".
//  * 50 samples per (benchmark, problem size) group, the sample size given
//    by the t-test power calculation (power 0.8 at half-a-sigma separation).
//  * Per-kernel timing segments and energy (RAPL on CPUs/MIC, NVML on GPUs).
//
// The kernels are executed functionally once (optionally validated against
// the serial reference); the per-device timing distribution is produced by
// the device's timing model plus its clock-dependent measurement noise.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dwarfs/common.hpp"
#include "xcl/check/report.hpp"
#include "scibench/sample_set.hpp"
#include "scibench/stats.hpp"
#include "sim/counters.hpp"
#include "xcl/device.hpp"
#include "xcl/executor.hpp"
#include "xcl/queue.hpp"

namespace eod::harness {

struct MeasureOptions {
  std::size_t samples = 50;       ///< paper: 50 per group
  double min_loop_seconds = 2.0;  ///< paper: >= 2 s measurement loop
  bool functional = true;         ///< execute kernels on the host
  bool validate = false;          ///< compare against the serial reference
  std::uint64_t seed = 1;         ///< measurement-noise stream seed
  /// Skip setup() because the dwarf already holds this size's dataset
  /// (device sweeps reuse one generated workload, as the paper does).
  bool reuse_setup = false;
  /// Collect PAPI-style hardware counters by replaying the benchmark's
  /// memory trace through the device's cache hierarchy (§4.3; only
  /// benchmarks that expose a trace produce cache events).  Replays are
  /// memoized (sim::ReplayCache), so a sweep pays each (trace, hierarchy)
  /// cell once.
  bool collect_counters = false;
  /// Refuse counter replays whose trace_size_hint() exceeds this many
  /// accesses (0 = unlimited).  A guard, not a truncation: the trace is
  /// either replayed fully or not at all.
  std::size_t max_trace_accesses = 0;
  /// Kernel-tier override for this group's functional execution (the
  /// --dispatch= flag): kAuto/kSpan take the span tier where legal, kItem
  /// pins the per-item reference path for A/B runs, kSimd selects
  /// hand-vectorized bodies (DESIGN.md §13), kChecked runs the functional
  /// pass under a CheckSession (DESIGN.md §10) and attaches the resulting
  /// CheckReport to the Measurement.  Restored afterwards.  nullopt defers
  /// to default_dispatch_mode() (kAuto unless the EOD_DISPATCH env hatch
  /// says otherwise), mirroring queue_mode.
  std::optional<xcl::DispatchMode> dispatch;
  /// Queue execution mode for the measurement queue (the --queue= flag):
  /// kInOrder serialises commands exactly as the paper's testbed drivers
  /// did; kOutOfOrder lets dependency-expressed dwarfs overlap transfers
  /// with compute (DESIGN.md §12).  nullopt defers to default_queue_mode()
  /// (kInOrder unless the EOD_QUEUE env hatch says otherwise).
  std::optional<xcl::QueueMode> queue_mode;
  /// Observability sinks (DESIGN.md §11); empty = disabled, zero overhead.
  /// When trace_path is set the group runs with the trace recorder on and
  /// writes a Chrome trace_event JSON there; metrics_path receives a
  /// process-metrics snapshot (.tsv suffix for TSV, JSON otherwise);
  /// manifest_path receives the run manifest with the metrics embedded.
  std::string trace_path;
  std::string metrics_path;
  std::string manifest_path;
  /// Run the eod_prof schedule analysis in-process after the artifacts are
  /// written (the --profile flag): the trace is parsed back from disk —
  /// validating that the DAG is recoverable from the artifact alone — and
  /// the report lands next to it as <trace>.profile.json, recorded in the
  /// manifest.  Implies a default trace_path of "trace.json" when none was
  /// requested.
  bool profile = false;
};

/// Per-kernel aggregate over one application iteration.
struct KernelSegment {
  std::string kernel;
  std::size_t launches = 0;
  double modeled_seconds = 0.0;
};

/// One (benchmark, size, device) measurement group.
struct Measurement {
  std::string benchmark;
  std::string device;
  dwarfs::ProblemSize size = dwarfs::ProblemSize::kTiny;

  std::size_t loop_iterations = 1;  ///< iterations per >= 2 s sample loop
  /// Modeled per-iteration segment times, seconds.
  double kernel_seconds = 0.0;
  double transfer_seconds = 0.0;
  /// Modeled end-to-end makespan of the iteration's command graph.  Equals
  /// kernel_seconds + transfer_seconds on an in-order queue; smaller when
  /// an out-of-order queue overlaps transfers with compute.
  double span_seconds = 0.0;
  double energy_joules = 0.0;  ///< modeled device energy per iteration
  std::vector<KernelSegment> segments;

  /// 50 sampled per-iteration kernel times, milliseconds.
  std::vector<double> time_samples_ms;
  /// 50 sampled whole-loop energies, joules (RAPL/NVML emulation).
  std::vector<double> energy_samples_j;

  bool validated = false;
  dwarfs::Validation validation;

  /// PAPI-style counters for the kernel segment (§4.3), present when
  /// collect_counters was requested and the benchmark exposes a trace.
  bool counters_collected = false;
  sim::CounterSet counters;

  /// Shadow-memory checker findings (DESIGN.md §10), present when the
  /// group's functional pass ran under --dispatch=checked.
  bool check_performed = false;
  xcl::check::CheckReport check_report;

  /// Final collision-suffixed artifact paths actually written (see
  /// obs::unique_artifact_path); empty when the sink was not requested or
  /// the write failed.
  std::string trace_path;
  std::string metrics_path;
  std::string manifest_path;
  std::string profile_path;

  [[nodiscard]] scibench::Summary time_summary() const {
    return scibench::summarize(time_samples_ms);
  }
  [[nodiscard]] scibench::Summary energy_summary() const {
    return scibench::summarize(energy_samples_j);
  }
};

/// Runs one measurement group.  The dwarf must NOT be bound; it is set up,
/// bound to `device`, run, optionally validated, and unbound.
[[nodiscard]] Measurement measure(dwarfs::Dwarf& dwarf,
                                  dwarfs::ProblemSize size,
                                  xcl::Device& device,
                                  const MeasureOptions& options = {});

/// Convenience sweep over every testbed device (Table 1 order).  Devices
/// are measured model-only after a single functional pass, exactly like
/// moving one binary across the cluster.
[[nodiscard]] std::vector<Measurement> measure_all_devices(
    const std::string& benchmark, dwarfs::ProblemSize size,
    const MeasureOptions& options = {});

}  // namespace eod::harness
