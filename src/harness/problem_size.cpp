#include "harness/problem_size.hpp"

#include "dwarfs/registry.hpp"

namespace eod::harness {

bool footprint_fits_class(const SizeClassBounds& bounds,
                          dwarfs::ProblemSize size,
                          std::size_t footprint_bytes) {
  switch (size) {
    case dwarfs::ProblemSize::kTiny:
      return footprint_bytes <= bounds.l1_bytes;
    case dwarfs::ProblemSize::kSmall:
      return footprint_bytes <= bounds.l2_bytes;
    case dwarfs::ProblemSize::kMedium:
      return footprint_bytes <= bounds.l3_bytes;
    case dwarfs::ProblemSize::kLarge:
      return static_cast<double>(footprint_bytes) >=
             bounds.large_multiplier *
                 static_cast<double>(bounds.l3_bytes);
  }
  return false;
}

std::size_t solve_scale_parameter(
    const SizeClassBounds& bounds, dwarfs::ProblemSize size,
    const std::function<std::size_t(std::size_t)>& footprint,
    std::size_t param_lo, std::size_t param_hi) {
  if (size == dwarfs::ProblemSize::kLarge) {
    // Smallest parameter whose footprint reaches multiplier x L3.
    std::size_t lo = param_lo;
    std::size_t hi = param_hi;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (footprint_fits_class(bounds, size, footprint(mid))) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }
  // Largest parameter that still fits the class's cache level.
  std::size_t lo = param_lo;
  std::size_t hi = param_hi;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    if (footprint_fits_class(bounds, size, footprint(mid))) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::vector<Table2Row> table2() {
  std::vector<Table2Row> rows;
  for (const auto& dwarf : dwarfs::create_all_dwarfs()) {
    Table2Row row;
    row.benchmark = dwarf->name();
    row.dwarf = dwarf->berkeley_dwarf();
    row.sizes = dwarf->supported_sizes();
    for (const dwarfs::ProblemSize s : row.sizes) {
      row.scale.push_back(dwarf->scale_parameter(s));
      row.footprint.push_back(dwarf->footprint_bytes(s));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace eod::harness
