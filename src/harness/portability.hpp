// Performance portability analysis -- §7 future work: "we would also like
// to develop some notion of 'ideal' performance for each combination of
// benchmark and device, which would guide efforts to improve performance
// portability."
//
// The ideal time for a launch on a device is its bare roofline bound:
// work at full peak throughput or traffic at full memory bandwidth,
// whichever dominates, with no launch overhead, occupancy loss, divergence
// or pattern penalties.  Architectural efficiency = ideal / achieved in
// (0, 1].  Across a device set H the suite reports Pennycook's performance
// portability metric: the harmonic mean of efficiencies when the
// application runs everywhere, 0 otherwise.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "dwarfs/common.hpp"
#include "xcl/device.hpp"

namespace eod::harness {

/// Efficiency of one (benchmark, size) on one device.
struct DeviceEfficiency {
  std::string device;
  double ideal_seconds = 0.0;     ///< roofline lower bound
  double achieved_seconds = 0.0;  ///< modeled time of the real launch plan
  /// ideal/achieved in (0, 1]; how close the code comes to the device's
  /// architectural best.
  [[nodiscard]] double efficiency() const noexcept {
    return achieved_seconds > 0.0 ? ideal_seconds / achieved_seconds : 0.0;
  }
};

/// Efficiency of one benchmark across a device set.
struct PortabilityReport {
  std::string benchmark;
  dwarfs::ProblemSize size = dwarfs::ProblemSize::kSmall;
  std::vector<DeviceEfficiency> devices;
  /// Pennycook PP: harmonic mean of per-device efficiencies (0 if any
  /// device failed to run the benchmark).
  double performance_portability = 0.0;
};

/// Roofline-ideal seconds for a benchmark's launch plan on a device.
[[nodiscard]] double ideal_seconds(const std::string& benchmark,
                                   dwarfs::ProblemSize size,
                                   xcl::Device& device);

/// Full report over a device set (defaults to the whole testbed).
[[nodiscard]] PortabilityReport portability_report(
    const std::string& benchmark, dwarfs::ProblemSize size,
    const std::vector<xcl::Device*>& devices);

/// The harmonic-mean PP metric over arbitrary efficiencies.
[[nodiscard]] double pennycook_pp(const std::vector<double>& efficiencies);

}  // namespace eod::harness
