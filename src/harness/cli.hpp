// Uniform command-line conventions for benchmark binaries, matching the
// paper's device-selection notation: every application takes
//   -p <platform> -d <device> -t <type>   (type: 0 = CPU, 1 = GPU, 2 = MIC)
// plus suite options (--size, --samples, --validate, ...), "allowing each
// device to be selected in a uniform way between applications" (§4.4.5).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dwarfs/common.hpp"
#include "xcl/device.hpp"
#include "xcl/executor.hpp"
#include "xcl/queue.hpp"

namespace eod::harness {

struct CliOptions {
  std::size_t platform = 0;
  std::size_t device = 0;
  int type = -1;  ///< -1 = any; 0 = CPU, 1 = GPU, 2 = accelerator (MIC)
  std::optional<std::string> device_name;  ///< --device-name "GTX 1080"
  /// --devices "GTX 1080,TITAN X": comma-separated testbed device names for
  /// partitioned multi-device runs (DESIGN.md §14).  Order defines the
  /// stripe order; repeats are allowed (homogeneous pairs).  Unknown names
  /// are a hard error (exit 2), never a silent fallback.
  std::vector<std::string> devices;
  std::optional<dwarfs::ProblemSize> size;
  std::size_t samples = 50;
  double min_loop_seconds = 2.0;
  bool validate = false;
  bool all_devices = false;  ///< sweep the whole testbed
  bool long_table = false;   ///< emit the R-compatible long table
  /// --dispatch auto|item|span|simd|checked: kernel-tier override for A/B
  /// runs (DESIGN.md §9, §13); item pins the per-item reference path, simd
  /// selects hand-vectorized bodies.  Unset defers to
  /// default_dispatch_mode() (the EOD_DISPATCH env hatch).
  std::optional<xcl::DispatchMode> dispatch;
  /// --queue inorder|ooo: measurement-queue execution mode (DESIGN.md §12).
  /// Unset defers to default_queue_mode() (the EOD_QUEUE env hatch).
  std::optional<xcl::QueueMode> queue_mode;
  /// --trace FILE: write a Chrome trace_event JSON of the run (DESIGN.md
  /// §11); empty = recorder off.  The EOD_TRACE env var is the no-recompile
  /// escape hatch apps consult when the flag is absent.
  std::string trace_path;
  /// --metrics FILE: write a process-metrics snapshot (.tsv → TSV, else
  /// JSON); empty = off.
  std::string metrics_path;
  /// --profile: run the eod_prof schedule analysis in-process on the
  /// written trace (implies a default --trace when absent) and record the
  /// report path in the manifest.
  bool profile = false;
  std::vector<std::string> positional;

  /// Resolves the requested device within the simulated testbed platform.
  [[nodiscard]] xcl::Device& resolve_device() const;

  /// Resolves the --devices set; falls back to {resolve_device()} when the
  /// flag is absent so callers have one code path.  Throws
  /// std::invalid_argument for names not in the testbed.
  [[nodiscard]] std::vector<xcl::Device*> resolve_devices() const;
};

/// Parses the uniform options; throws std::invalid_argument (with a usage
/// string) on malformed input.  Unrecognised tokens land in `positional`.
[[nodiscard]] CliOptions parse_cli(int argc, const char* const* argv);

/// The usage text shared by all benchmark binaries.
[[nodiscard]] std::string usage(const std::string& program);

}  // namespace eod::harness
