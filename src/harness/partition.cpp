#include "harness/partition.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "dwarfs/beff/beff.hpp"
#include "xcl/buffer.hpp"
#include "xcl/kernel.hpp"
#include "xcl/modeling.hpp"

namespace eod::harness {

namespace {

/// Modeled link cost of one halo transfer into `dst` from `src`, via the
/// installed LinkModel; endpoint host-link staging when none is installed.
double halo_link_seconds(const xcl::Device& src, const xcl::Device& dst,
                         std::size_t bytes) {
  if (const xcl::LinkModel* lm = xcl::link_model()) {
    return lm->peer_seconds(src, dst, bytes);
  }
  return src.model().transfer_seconds(bytes,
                                      xcl::TransferDir::kDeviceToHost) +
         dst.model().transfer_seconds(bytes, xcl::TransferDir::kHostToDevice);
}

/// Dispatch-tier override scoped like harness::measure()'s.
struct DispatchGuard {
  xcl::DispatchMode prev = xcl::dispatch_mode();
  explicit DispatchGuard(const std::optional<xcl::DispatchMode>& mode) {
    xcl::set_dispatch_mode(mode.value_or(xcl::default_dispatch_mode()));
  }
  ~DispatchGuard() { xcl::set_dispatch_mode(prev); }
};

/// Per-device execution state.  Queues are out-of-order so compute chains
/// only through the explicit wait lists and halo copies ride the transfer
/// lane concurrently with kernels.
struct DevState {
  explicit DevState(xcl::Device& device)
      : ctx(device), q(ctx, xcl::QueueMode::kOutOfOrder) {}
  xcl::Context ctx;
  xcl::Queue q;
  std::vector<xcl::Buffer> bufs;
};

struct SpanClock {
  double upload_end = 0.0;
  double last_end = 0.0;

  void upload(const xcl::Event& e) {
    upload_end = std::max(upload_end, e.modeled_end_s);
    last_end = std::max(last_end, e.modeled_end_s);
  }
  void work(const xcl::Event& e) {
    last_end = std::max(last_end, e.modeled_end_s);
  }
  void fill(PartitionedResult& r) const {
    r.makespan_s = last_end;
    r.upload_horizon_s = upload_end;
    r.compute_makespan_s = std::max(0.0, last_end - upload_end);
  }
};

void count_halo(PartitionedResult& r, const xcl::Event& e,
                std::size_t bytes) {
  ++r.halo_transfers;
  r.halo_bytes += bytes;
  r.halo_seconds += e.modeled_seconds();
}

}  // namespace

std::vector<Shard> plan_shards(const std::vector<xcl::Device*>& devices,
                               std::size_t total_blocks,
                               const xcl::WorkloadProfile& per_block,
                               xcl::NDRange block_range,
                               std::size_t halo_bytes,
                               const std::vector<double>& block_weights) {
  xcl::require(!devices.empty(), xcl::Status::kInvalidValue,
               "plan_shards needs at least one device");
  xcl::require(total_blocks > 0, xcl::Status::kInvalidValue,
               "plan_shards needs at least one block");
  xcl::require(block_weights.empty() || block_weights.size() == total_blocks,
               xcl::Status::kInvalidValue,
               "block_weights must be empty or one weight per block");
  const std::size_t n = devices.size();

  // Probe launch per device: the modeled duration of one block of work.
  // The kernel body is empty -- only the WorkloadProfile and the device's
  // timing model matter here.
  std::vector<double> per_block_s(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    xcl::Context ctx(*devices[i]);
    xcl::Queue q(ctx);
    q.set_functional(false);  // model-only probe
    xcl::Kernel probe("partition_probe", [](xcl::WorkItem&) {});
    // lint: no-deps(model-only probe, sole command on a fresh private queue)
    const xcl::Event e = q.enqueue(probe, block_range, per_block);
    per_block_s[i] = std::max(e.modeled_seconds(), 1e-12);
    // One halo arrives per super-step (wavefront diagonal / factorization
    // step) regardless of how wide the shard is, so its link cost
    // amortises across the row of blocks: devices on the far side of a
    // slow staged path get smaller shards without a latency-sized penalty
    // swamping the per-block compute signal.
    if (i > 0 && halo_bytes > 0) {
      per_block_s[i] += halo_link_seconds(*devices[i - 1], *devices[i],
                                          halo_bytes) /
                        static_cast<double>(total_blocks);
    }
  }

  // Proportional shares by modeled rate.
  std::vector<double> weight(n);
  for (std::size_t i = 0; i < n; ++i) weight[i] = 1.0 / per_block_s[i];
  std::vector<std::size_t> share(n, 0);
  if (!block_weights.empty()) {
    // Weighted prefix cut: walk the block rows once, closing a stripe when
    // adding the next row would overshoot the device's work target (its
    // rate share of the work still unassigned) by more than stopping short
    // undershoots it.  Every stripe leaves one row for each device after
    // it; the last device takes the remainder.
    double rate_left = std::accumulate(weight.begin(), weight.end(), 0.0);
    double work_left =
        std::accumulate(block_weights.begin(), block_weights.end(), 0.0);
    std::size_t begin = 0;
    for (std::size_t i = 0; i < n && begin < total_blocks; ++i) {
      const std::size_t devices_after = n - i - 1;
      std::size_t end = begin + 1;
      double acc = block_weights[begin];
      if (devices_after == 0) {
        end = total_blocks;
      } else {
        const double target = work_left * weight[i] / rate_left;
        while (end < total_blocks - devices_after &&
               acc + block_weights[end] / 2.0 < target) {
          acc += block_weights[end++];
        }
      }
      share[i] = end - begin;
      work_left -= acc;
      rate_left -= weight[i];
      begin = end;
    }
  } else {
    // Uniform blocks: largest-remainder rounding keeps the total exact.
    const double wsum = std::accumulate(weight.begin(), weight.end(), 0.0);
    std::vector<std::pair<double, std::size_t>> frac;
    std::size_t assigned = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double ideal =
          static_cast<double>(total_blocks) * weight[i] / wsum;
      share[i] = static_cast<std::size_t>(ideal);
      assigned += share[i];
      frac.emplace_back(ideal - static_cast<double>(share[i]), i);
    }
    std::sort(frac.begin(), frac.end(), [](const auto& a, const auto& b) {
      return a.first > b.first || (a.first == b.first && a.second < b.second);
    });
    for (std::size_t j = 0; assigned < total_blocks; ++j, ++assigned) {
      ++share[frac[j % n].second];
    }
  }
  // Every device keeps at least one block while blocks last; steal from
  // the largest share.
  for (std::size_t i = 0; i < std::min(n, total_blocks); ++i) {
    while (share[i] == 0) {
      auto big = std::max_element(share.begin(), share.end());
      --*big;
      ++share[i];
    }
  }

  std::vector<Shard> shards;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (share[i] == 0) continue;  // more devices than blocks
    Shard s;
    s.device = devices[i];
    s.block_begin = begin;
    s.block_end = begin + share[i];
    begin = s.block_end;
    shards.push_back(s);
  }
  return shards;
}

PartitionedResult run_partitioned_nw(dwarfs::Nw& nw,
                                     const std::vector<xcl::Device*>& devices,
                                     const PartitionOptions& options) {
  constexpr std::size_t B = dwarfs::Nw::kBlock;
  const std::size_t m = nw.length() + 1;
  const std::size_t nb = nw.length() / B;
  const std::size_t bytes = m * m * sizeof(std::int32_t);

  DispatchGuard dispatch_guard(options.dispatch);
  PartitionedResult r;
  r.shards = plan_shards(devices, nb, dwarfs::Nw::block_profile(m, 1),
                         xcl::NDRange(B, B), (B + 1) * sizeof(std::int32_t));
  const std::size_t nd = r.shards.size();

  std::vector<std::unique_ptr<DevState>> dev;
  SpanClock clock;
  // Each device's kernel chain is seeded with its *last upload event*, so
  // the modeled timeline is causal: no stripe computes before its inputs
  // landed, and the steady-state span cleanly starts at the upload horizon.
  std::vector<std::optional<xcl::Event>> last_launch(nd);
  for (std::size_t si = 0; si < r.shards.size(); ++si) {
    auto d = std::make_unique<DevState>(*r.shards[si].device);
    d->bufs.emplace_back(d->ctx, bytes);  // [0] score
    d->bufs.emplace_back(d->ctx, bytes);  // [1] similarity
    // lint: no-deps(seed upload: blocking, first command on this queue)
    clock.upload(d->q.enqueue_write<std::int32_t>(d->bufs[0], nw.boundary()));
    const xcl::Event up =
        // lint: no-deps(seed upload: blocking, first command on this queue)
        d->q.enqueue_write<std::int32_t>(d->bufs[1], nw.similarity());
    clock.upload(up);
    last_launch[si] = up;
    dev.push_back(std::move(d));
  }

  // The global anti-diagonal sweep, one launch per device per diagonal over
  // the blocks its stripe contributes.  A stripe's top block needs the
  // producer stripe's bottom row segment (B+1 cells: the row above plus
  // the shared corner); the peer copy waits only on the producer's previous
  // diagonal launch, so it lands while both devices keep computing.
  for (std::size_t d = 0; d < 2 * nb - 1; ++d) {
    const std::size_t glo = d >= nb ? d - nb + 1 : 0;
    const std::size_t ghi = std::min(d, nb - 1);
    // Snapshot so a halo waits on its producer's *previous*-diagonal
    // launch, not the one the producer just issued for this diagonal --
    // that is what keeps the stripes pipelined instead of lock-stepped.
    const std::vector<std::optional<xcl::Event>> prev_launch = last_launch;
    for (std::size_t si = 0; si < nd; ++si) {
      const Shard& s = r.shards[si];
      const std::size_t blo = std::max(glo, s.block_begin);
      const std::size_t bhi = std::min(ghi, s.block_end - 1);
      if (blo > bhi) continue;
      std::vector<xcl::Event> wait;
      if (last_launch[si].has_value()) wait.push_back(*last_launch[si]);
      if (si > 0 && blo == s.block_begin) {
        // Halo for top block (block_begin, bj): row block_begin*B, columns
        // bj*B .. bj*B + B, final on the producer after its previous
        // diagonal covered blocks (block_begin - 1, bj) and onward.
        const std::size_t bj = d - s.block_begin;
        const std::size_t off =
            (s.block_begin * B * m + bj * B) * sizeof(std::int32_t);
        std::vector<xcl::Event> halo_wait;
        if (prev_launch[si - 1].has_value()) {
          halo_wait.push_back(*prev_launch[si - 1]);
        }
        const xcl::Event halo = dev[si]->q.enqueue_peer_copy(
            dev[si - 1]->bufs[0], off, dev[si]->bufs[0], off,
            (B + 1) * sizeof(std::int32_t), halo_wait);
        count_halo(r, halo, (B + 1) * sizeof(std::int32_t));
        clock.work(halo);
        wait.push_back(halo);
      }
      const std::size_t groups = bhi - blo + 1;
      const xcl::Event launch = dev[si]->q.enqueue(
          dwarfs::Nw::make_block_kernel(dev[si]->bufs[0], dev[si]->bufs[1],
                                        m, nw.penalty(), d, blo),
          xcl::NDRange(groups * B, B), dwarfs::Nw::block_profile(m, groups),
          wait);
      clock.work(launch);
      last_launch[si] = launch;
    }
  }

  // Assemble: boundary matrix overlaid with each stripe's computed rows.
  for (auto& d : dev) d->q.finish();
  std::vector<std::int32_t> result = nw.boundary();
  for (std::size_t si = 0; si < nd; ++si) {
    const Shard& s = r.shards[si];
    const std::size_t row0 = s.block_begin * B + 1;
    const std::size_t rows = s.blocks() * B;
    dev[si]->q.enqueue_read<std::int32_t>(
        dev[si]->bufs[0], std::span(result.data() + row0 * m, rows * m),
        row0 * m, {});
  }
  for (auto& d : dev) d->q.finish();  // explicit-wait reads are deferred
  nw.adopt_result(std::move(result));
  r.signature = nw.result_signature();
  if (options.validate) r.validation = nw.validate();
  clock.fill(r);
  return r;
}

PartitionedResult run_partitioned_lud(
    dwarfs::Lud& lud, const std::vector<xcl::Device*>& devices,
    const PartitionOptions& options) {
  constexpr std::size_t B = dwarfs::Lud::kBlock;
  const std::size_t n = lud.dim();
  const std::size_t nb = n / B;
  const std::size_t bytes = n * n * sizeof(float);
  const std::size_t stripe_bytes = B * n * sizeof(float);

  DispatchGuard dispatch_guard(options.dispatch);
  PartitionedResult r;
  // Block row r's work is dominated by its trailing updates: one column
  // panel and (nb - 1 - k) internal GEMM blocks for every step k < r, so
  // weight(r) = 1 + sum_{k<r} (nb - k) = 1 + r*nb - r(r-1)/2.  An
  // equal-count split would hand ~70% of the flops to the bottom stripe;
  // weighting lets the top device hold more rows and finish together.
  std::vector<double> row_work(nb);
  for (std::size_t row = 0; row < nb; ++row) {
    const double rd = static_cast<double>(row);
    row_work[row] =
        1.0 + rd * static_cast<double>(nb) - rd * (rd - 1.0) / 2.0;
  }
  r.shards = plan_shards(devices, nb, dwarfs::Lud::internal_profile(n, 1, 1),
                         xcl::NDRange(B * B, B * B), stripe_bytes, row_work);
  const std::size_t nd = r.shards.size();

  std::vector<std::unique_ptr<DevState>> dev;
  SpanClock clock;
  // Seed each device's chain with its upload so the modeled timeline is
  // causal (see run_partitioned_nw).
  std::vector<std::optional<xcl::Event>> last(nd);
  for (std::size_t si = 0; si < r.shards.size(); ++si) {
    auto d = std::make_unique<DevState>(*r.shards[si].device);
    d->bufs.emplace_back(d->ctx, bytes);
    // lint: no-deps(seed upload: blocking, first command on this queue)
    const xcl::Event up = d->q.enqueue_write<float>(d->bufs[0], lud.input());
    clock.upload(up);
    last[si] = up;
    dev.push_back(std::move(d));
  }

  // Right-looking factorization over block-row stripes.  Per step k the
  // owner finalises stripe k (diagonal + row panel), broadcasts it to every
  // device still holding trailing rows, and each device solves its own
  // column-panel blocks then applies the trailing GEMM update to its rows.
  // The broadcasts only wait on the owner's panel event, so they overlap
  // the consumers' previous-step updates on the transfer lane, and the
  // owner starts step k+1 while consumers still chew on step k.
  auto owner_of = [&](std::size_t k) {
    for (std::size_t si = 0; si < nd; ++si) {
      if (k >= r.shards[si].block_begin && k < r.shards[si].block_end) {
        return si;
      }
    }
    return nd;  // unreachable: shards cover [0, nb)
  };
  for (std::size_t k = 0; k < nb; ++k) {
    const std::size_t so = owner_of(k);
    DevState& od = *dev[so];
    std::vector<xcl::Event> wait;
    if (last[so].has_value()) wait.push_back(*last[so]);
    const xcl::Event diag =
        od.q.enqueue(dwarfs::Lud::make_diagonal_kernel(od.bufs[0], n, k),
                     xcl::NDRange(B, B), dwarfs::Lud::diagonal_profile(n),
                     wait);
    clock.work(diag);
    xcl::Event stripe_ready = diag;
    const std::size_t rem = nb - k - 1;
    if (rem > 0) {
      const xcl::Event row = od.q.enqueue(
          dwarfs::Lud::make_perimeter_row_kernel(od.bufs[0], n, k),
          xcl::NDRange(rem * B, B), dwarfs::Lud::perimeter_profile(n, rem),
          std::vector<xcl::Event>{diag});
      clock.work(row);
      stripe_ready = row;
    }
    last[so] = stripe_ready;
    if (rem == 0) continue;

    // Broadcast the finished stripe before enqueueing the owner's own
    // trailing work, then fan out the per-device updates.
    std::vector<std::optional<xcl::Event>> bcast(nd);
    for (std::size_t si = 0; si < nd; ++si) {
      if (si == so) continue;
      if (std::max(r.shards[si].block_begin, k + 1) >=
          r.shards[si].block_end) {
        continue;  // this device's rows are already fully factorised
      }
      const xcl::Event b = dev[si]->q.enqueue_peer_copy(
          od.bufs[0], k * B * n * sizeof(float), dev[si]->bufs[0],
          k * B * n * sizeof(float), stripe_bytes,
          std::vector<xcl::Event>{stripe_ready});
      count_halo(r, b, stripe_bytes);
      clock.work(b);
      bcast[si] = b;
    }
    for (std::size_t si = 0; si < nd; ++si) {
      const std::size_t m_lo = std::max(r.shards[si].block_begin, k + 1);
      if (m_lo >= r.shards[si].block_end) continue;
      const std::size_t cnt = r.shards[si].block_end - m_lo;
      DevState& d = *dev[si];
      std::vector<xcl::Event> col_wait;
      if (si == so) {
        col_wait.push_back(stripe_ready);
      } else {
        col_wait.push_back(*bcast[si]);
        if (last[si].has_value()) col_wait.push_back(*last[si]);
      }
      const xcl::Event col = d.q.enqueue(
          dwarfs::Lud::make_perimeter_col_kernel(d.bufs[0], n, k, m_lo),
          xcl::NDRange(cnt * B, B), dwarfs::Lud::perimeter_profile(n, cnt),
          col_wait);
      const xcl::Event internal = d.q.enqueue(
          dwarfs::Lud::make_internal_kernel(d.bufs[0], n, k, m_lo),
          xcl::NDRange(cnt * rem * B * B, B * B),
          dwarfs::Lud::internal_profile(n, cnt, rem),
          std::vector<xcl::Event>{col});
      clock.work(col);
      clock.work(internal);
      last[si] = internal;
    }
  }

  for (auto& d : dev) d->q.finish();
  std::vector<float> result(n * n, 0.0f);
  for (std::size_t si = 0; si < nd; ++si) {
    const Shard& s = r.shards[si];
    const std::size_t off = s.block_begin * B * n;
    dev[si]->q.enqueue_read<float>(
        dev[si]->bufs[0],
        std::span(result.data() + off, s.blocks() * B * n), off, {});
  }
  for (auto& d : dev) d->q.finish();  // explicit-wait reads are deferred
  lud.adopt_result(std::move(result));
  r.signature = lud.result_signature();
  if (options.validate) r.validation = lud.validate();
  clock.fill(r);
  return r;
}

std::vector<RingPoint> ring_sweep(const std::vector<xcl::Device*>& devices,
                                  std::size_t max_bytes) {
  xcl::require(!devices.empty(), xcl::Status::kInvalidValue,
               "ring_sweep needs at least one device");
  std::vector<std::unique_ptr<DevState>> dev;
  for (xcl::Device* d : devices) {
    auto s = std::make_unique<DevState>(*d);
    s->bufs.emplace_back(s->ctx, max_bytes);
    dev.push_back(std::move(s));
  }
  const std::size_t nd = dev.size();
  std::vector<RingPoint> points;
  for (const std::size_t bytes : dwarfs::Beff::sweep_sizes(max_bytes)) {
    double start = 0.0, end = 0.0;
    bool first = true;
    // All hops of one message size are independent (each lands on its own
    // destination queue), so they traverse the ring's links concurrently.
    for (std::size_t i = 0; i < nd; ++i) {
      const std::size_t dst = (i + 1) % nd;
      // lint: no-deps(bandwidth probe: hops are independent, payload unchecked)
      const xcl::Event hop = dev[dst]->q.enqueue_peer_copy(
          dev[i]->bufs[0], 0, dev[dst]->bufs[0], 0, bytes);
      start = first ? hop.modeled_start_s : std::min(start,
                                                     hop.modeled_start_s);
      end = first ? hop.modeled_end_s : std::max(end, hop.modeled_end_s);
      first = false;
    }
    RingPoint p;
    p.bytes = bytes;
    const double span = end - start;
    p.ring_gbs = span > 0.0
                     ? static_cast<double>(nd) * static_cast<double>(bytes) /
                           span / 1e9
                     : 0.0;
    points.push_back(p);
  }
  for (auto& d : dev) d->q.finish();
  return points;
}

}  // namespace eod::harness
