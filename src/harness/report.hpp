// Figure/table output: prints the same rows and series the paper reports,
// in both human-readable and R-compatible (LibSciBench-style) long form.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "harness/runner.hpp"

namespace eod::harness {

/// Human-readable summary block for one figure panel: one row per device
/// with class colour, mean/median/CoV/quartiles (what the paper's box plots
/// show).
void print_panel(std::ostream& os, const std::string& title,
                 const std::vector<Measurement>& measurements);

/// LibSciBench-style long table: one row per sample
/// (benchmark device class size sample time_ms energy_j).
void print_long_table(std::ostream& os,
                      const std::vector<Measurement>& measurements);

/// Energy panel (Fig. 5): joules per benchmark per device.
void print_energy_panel(std::ostream& os, const std::string& title,
                        const std::vector<Measurement>& measurements);

/// Renders Table 1 (hardware characteristics) from the device registry.
void print_table1(std::ostream& os);

/// Renders Table 2 (workload scale parameters) with verified footprints.
void print_table2(std::ostream& os);

}  // namespace eod::harness
