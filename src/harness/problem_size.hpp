// The §4.4 problem-size methodology, generalised so it "can now be easily
// adjusted for next generation accelerator systems" (paper §6).
//
// tiny fits L1, small fits L2, medium fits L3, large is at least 4x the
// last-level cache of the reference CPU (the Skylake i7-6700K by default).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dwarfs/common.hpp"
#include "sim/device_spec.hpp"

namespace eod::harness {

/// The cache-capacity targets each size class must satisfy.
struct SizeClassBounds {
  std::size_t l1_bytes = 0;
  std::size_t l2_bytes = 0;
  std::size_t l3_bytes = 0;
  /// large must exceed this multiple of the last-level cache (paper: 4x).
  double large_multiplier = 4.0;

  [[nodiscard]] static SizeClassBounds from_device(const sim::DeviceSpec& d) {
    return {d.l1.size_bytes, d.l2.size_bytes, d.l3.size_bytes, 4.0};
  }
};

/// Checks a footprint against its class target: tiny/small/medium must fit
/// the corresponding level; large must be >= multiplier x L3.
[[nodiscard]] bool footprint_fits_class(const SizeClassBounds& bounds,
                                        dwarfs::ProblemSize size,
                                        std::size_t footprint_bytes);

/// Finds the largest integer scale parameter whose footprint (given by
/// `footprint(param)`, monotonically non-decreasing) still fits the target
/// level of `size` -- the search the paper performs per benchmark when
/// porting the methodology to a new memory hierarchy.  For kLarge, returns
/// the smallest parameter exceeding multiplier x L3.
[[nodiscard]] std::size_t solve_scale_parameter(
    const SizeClassBounds& bounds, dwarfs::ProblemSize size,
    const std::function<std::size_t(std::size_t)>& footprint,
    std::size_t param_lo = 1, std::size_t param_hi = 1u << 24);

/// One row of Table 2 with the footprints filled in.
struct Table2Row {
  std::string benchmark;
  std::string dwarf;
  std::vector<std::string> scale;      // per supported size
  std::vector<std::size_t> footprint;  // bytes, per supported size
  std::vector<dwarfs::ProblemSize> sizes;
};

/// Regenerates Table 2 from the benchmark registry.
[[nodiscard]] std::vector<Table2Row> table2();

}  // namespace eod::harness
