#include "harness/cli.hpp"

#include <stdexcept>

#include "sim/testbed.hpp"

namespace eod::harness {

namespace {

std::size_t parse_index(const std::string& flag, const std::string& value) {
  try {
    return static_cast<std::size_t>(std::stoull(value));
  } catch (const std::exception&) {
    throw std::invalid_argument("bad value for " + flag + ": " + value);
  }
}

}  // namespace

xcl::Device& CliOptions::resolve_device() const {
  xcl::Platform& p = sim::testbed_platform();
  (void)platform;  // single simulated platform; kept for CLI fidelity
  if (device_name.has_value()) return sim::testbed_device(*device_name);
  if (type < 0) return p.device(device);
  const xcl::DeviceType t = type == 0   ? xcl::DeviceType::kCpu
                            : type == 1 ? xcl::DeviceType::kGpu
                                        : xcl::DeviceType::kAccelerator;
  return p.select(device, t);
}

std::vector<xcl::Device*> CliOptions::resolve_devices() const {
  if (devices.empty()) return {&resolve_device()};
  std::vector<xcl::Device*> out;
  for (const std::string& name : devices) {
    try {
      out.push_back(&sim::testbed_device(name));
    } catch (const std::exception&) {
      throw std::invalid_argument("--devices: no testbed device named \"" +
                                  name + "\"");
    }
  }
  return out;
}

CliOptions parse_cli(int argc, const char* const* argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string original = argv[i];
    std::string arg = original;
    // Long options accept both "--flag value" and "--flag=value".
    std::optional<std::string> inline_value;
    if (arg.rfind("--", 0) == 0) {
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        arg = arg.substr(0, eq);
      }
    }
    auto next = [&](const std::string& flag) -> std::string {
      if (inline_value.has_value()) return *inline_value;
      if (i + 1 >= argc) {
        throw std::invalid_argument(flag + " requires a value");
      }
      return argv[++i];
    };
    if (arg == "-p" || arg == "--platform") {
      o.platform = parse_index(arg, next(arg));
    } else if (arg == "-d" || arg == "--device") {
      o.device = parse_index(arg, next(arg));
    } else if (arg == "-t" || arg == "--type") {
      o.type = static_cast<int>(parse_index(arg, next(arg)));
      if (o.type > 2) throw std::invalid_argument("-t must be 0, 1 or 2");
    } else if (arg == "--device-name") {
      o.device_name = next(arg);
    } else if (arg == "--devices") {
      // Comma-separated testbed names; validated against the testbed at
      // resolve_devices() time so parse stays platform-free.
      const std::string v = next(arg);
      o.devices.clear();
      std::size_t start = 0;
      while (start <= v.size()) {
        const std::size_t comma = v.find(',', start);
        const std::string name =
            v.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
        if (name.empty()) {
          throw std::invalid_argument(
              "--devices expects a comma-separated list of device names: " +
              v);
        }
        o.devices.push_back(name);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (arg == "--size") {
      const std::string v = next(arg);
      const auto s = dwarfs::parse_problem_size(v);
      if (!s.has_value()) {
        throw std::invalid_argument("bad --size (tiny|small|medium|large): " +
                                    v);
      }
      o.size = s;
    } else if (arg == "--samples") {
      o.samples = parse_index(arg, next(arg));
    } else if (arg == "--min-loop-seconds") {
      o.min_loop_seconds = std::stod(next(arg));
    } else if (arg == "--validate") {
      o.validate = true;
    } else if (arg == "--all-devices") {
      o.all_devices = true;
    } else if (arg == "--long-table") {
      o.long_table = true;
    } else if (arg == "--dispatch") {
      const std::string v = next(arg);
      const auto mode = xcl::parse_dispatch_mode(v);
      if (!mode.has_value()) {
        // Hard failure, never a silent fallback to auto: a run that quietly
        // measured the wrong tier is worse than no run.  The valid-mode
        // list comes from the executor so it cannot drift.
        throw std::invalid_argument(
            std::string("bad --dispatch (") + xcl::dispatch_mode_names() +
            "): " + v);
      }
      o.dispatch = *mode;
    } else if (arg == "--queue") {
      const std::string v = next(arg);
      const auto mode = xcl::parse_queue_mode(v);
      if (!mode.has_value()) {
        throw std::invalid_argument("bad --queue (inorder|ooo): " + v);
      }
      o.queue_mode = *mode;
    } else if (arg == "--trace") {
      o.trace_path = next(arg);
    } else if (arg == "--metrics") {
      o.metrics_path = next(arg);
    } else if (arg == "--profile") {
      o.profile = true;
    } else {
      o.positional.push_back(original);
    }
  }
  return o;
}

std::string usage(const std::string& program) {
  return "usage: " + program +
         " [-p P] [-d D] [-t 0|1|2] [--device-name NAME]\n"
         "          [--devices \"NAME,NAME,...\"]\n"
         "          [--size tiny|small|medium|large] [--samples N]\n"
         "          [--min-loop-seconds S] [--validate] [--all-devices]\n"
         "          [--long-table] [--dispatch " +
         std::string(xcl::dispatch_mode_names()) +
         "]\n"
         "          [--queue inorder|ooo] [--trace FILE] [--metrics FILE]\n"
         "          [--profile]\n"
         "device selection follows the paper's notation: -p <platform>\n"
         "-d <device index within type> -t <0=CPU, 1=GPU, 2=MIC>\n"
         "--trace writes a chrome://tracing JSON; --metrics a process\n"
         "metrics snapshot (.tsv for TSV); either also writes manifest.json\n"
         "(EOD_TRACE=1 enables tracing without the flag)\n"
         "--profile runs the eod_prof schedule analysis on the written\n"
         "trace (implying --trace trace.json when absent) and records the\n"
         "report path in the manifest\n"
         "--queue ooo lets dependency-expressed dwarfs overlap transfers\n"
         "with compute (EOD_QUEUE=ooo sets the default without the flag)\n"
         "--dispatch simd runs hand-vectorized kernel bodies where a dwarf\n"
         "provides one (EOD_DISPATCH pins the tier without the flag)\n"
         "--devices partitions supporting dwarfs (nw, lud) across several\n"
         "simulated devices over the modeled interconnect (DESIGN.md 14)\n";
}

}  // namespace eod::harness
