// Multi-device co-execution (DESIGN.md §14): split one problem across N
// simulated devices connected by the modeled interconnect.
//
// The paper benchmarks each device in isolation; this layer asks the
// natural follow-up question -- what does the testbed look like as a small
// heterogeneous cluster?  A transfer-aware static partitioner sizes one
// contiguous block-row stripe per device from modeled throughput, and two
// dwarfs get partitioned runners wired through the PR 6 event-DAG:
//
//  * nw   -- anti-diagonal block wavefront.  Each device sweeps its stripe;
//            the (B+1)-element boundary row segment a stripe's top block
//            needs from the stripe above travels as a peer copy that only
//            waits on the producer's previous diagonal launch, so halo
//            exchange overlaps the wavefront on the transfer lane.
//  * lud  -- block-row panels.  The owner of step k factorises the diagonal
//            and row panel, broadcasts the finished stripe to every device
//            that still holds trailing rows, and each device updates its own
//            panel rows; the owner's step k+1 panel work overlaps the other
//            devices' step-k trailing updates.
//
// Both runners launch the exact kernels the single-device dwarfs launch
// (shared factories on Nw / Lud), so the assembled outputs are bit-identical
// to a single-device run -- the equivalence tests pin that.  All queues
// share one modeled timebase (cross-queue waits propagate modeled
// placement), so the makespan over every event is the cluster's modeled
// time to solution.
//
// ring_sweep() is the b_eff ring pattern (see dwarfs/beff): every device
// forwards a message to its ring successor concurrently, sweeping message
// sizes over the peer links instead of the host link.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "dwarfs/lud/lud.hpp"
#include "dwarfs/nw/nw.hpp"
#include "xcl/device.hpp"
#include "xcl/executor.hpp"
#include "xcl/queue.hpp"

namespace eod::harness {

/// One device's contiguous run of block rows [block_begin, block_end).
struct Shard {
  xcl::Device* device = nullptr;
  std::size_t block_begin = 0;
  std::size_t block_end = 0;

  [[nodiscard]] std::size_t blocks() const noexcept {
    return block_end - block_begin;
  }
};

/// Transfer-aware static partition: splits `total_blocks` contiguous block
/// rows over `devices` proportionally to modeled per-block throughput.
/// Each device's rate comes from a probe launch of `block_range` work with
/// `per_block` cost on its timing model, plus the modeled link cost of one
/// `halo_bytes` transfer from its predecessor (devices behind slow links
/// get smaller shards).  Largest-remainder rounding keeps the total exact;
/// every device keeps at least one block while blocks last.
///
/// `block_weights` (empty = uniform) gives each block row a relative work
/// weight; stripes then equalise weighted work per unit of device rate
/// instead of block counts.  lud uses this: row r joins the trailing
/// update of every step k < r, so bottom rows carry far more work than top
/// rows and an equal-count split would idle the top device.
[[nodiscard]] std::vector<Shard> plan_shards(
    const std::vector<xcl::Device*>& devices, std::size_t total_blocks,
    const xcl::WorkloadProfile& per_block, xcl::NDRange block_range,
    std::size_t halo_bytes, const std::vector<double>& block_weights = {});

struct PartitionOptions {
  /// Run the serial-reference comparison on the assembled output.
  bool validate = false;
  /// Kernel-tier override for the partitioned launches (e.g. span); unset
  /// defers to default_dispatch_mode(), exactly like harness::measure().
  std::optional<xcl::DispatchMode> dispatch;
};

/// What a partitioned run produced, on the shared modeled timebase.
struct PartitionedResult {
  std::vector<Shard> shards;
  /// result_signature() of the assembled output (bit-comparable with a
  /// single-device run of the same dwarf).
  std::uint64_t signature = 0;
  dwarfs::Validation validation;  ///< filled when options.validate

  double makespan_s = 0.0;         ///< uploads + compute + halos, modeled
  double upload_horizon_s = 0.0;   ///< when the last initial upload landed
  /// Steady-state span: makespan minus the one-time uploads -- what repeat
  /// application iterations cost, and what speedup gates compare.
  double compute_makespan_s = 0.0;

  std::size_t halo_transfers = 0;  ///< peer copies issued
  std::size_t halo_bytes = 0;
  double halo_seconds = 0.0;       ///< summed modeled link occupancy
};

/// Runs a configured Nw across `devices` (out-of-order queues, halo peer
/// copies); installs the assembled score matrix via Nw::adopt_result.
[[nodiscard]] PartitionedResult run_partitioned_nw(
    dwarfs::Nw& nw, const std::vector<xcl::Device*>& devices,
    const PartitionOptions& options = {});

/// Runs a configured Lud across `devices` (out-of-order queues, panel
/// broadcasts); installs the assembled factor via Lud::adopt_result.
[[nodiscard]] PartitionedResult run_partitioned_lud(
    dwarfs::Lud& lud, const std::vector<xcl::Device*>& devices,
    const PartitionOptions& options = {});

/// One message size of the b_eff ring sweep.
struct RingPoint {
  std::size_t bytes = 0;
  double ring_gbs = 0.0;  ///< aggregate: N concurrent hops' bytes / span
};

/// b_eff ring pattern over the modeled interconnect: per message size every
/// device sends to its ring successor, all hops in flight together; the
/// aggregate bandwidth is total bytes moved over the modeled span.
[[nodiscard]] std::vector<RingPoint> ring_sweep(
    const std::vector<xcl::Device*>& devices, std::size_t max_bytes);

}  // namespace eod::harness
