#include "harness/autotune.hpp"

#include <algorithm>

namespace eod::harness {

std::vector<TuneResult> sweep_work_group_sizes(
    const xcl::Device& device, std::size_t global_items,
    const xcl::WorkloadProfile& profile,
    const std::vector<std::size_t>& candidates) {
  std::vector<TuneResult> results;
  for (const std::size_t wg : candidates) {
    if (wg > device.info().max_work_group_size) continue;
    if (wg > global_items) continue;
    // Pad the global size up to a work-group multiple, as launches do.
    const std::size_t global = (global_items + wg - 1) / wg * wg;
    xcl::KernelLaunchStats stats{"autotune_probe",
                                 xcl::NDRange(global, wg), profile};
    results.push_back({wg, device.model().kernel_seconds(stats)});
  }
  std::sort(results.begin(), results.end(),
            [](const TuneResult& a, const TuneResult& b) {
              return a.modeled_seconds < b.modeled_seconds;
            });
  return results;
}

TuneResult autotune_work_group(const xcl::Device& device,
                               std::size_t global_items,
                               const xcl::WorkloadProfile& profile,
                               const std::vector<std::size_t>& candidates) {
  const auto results =
      sweep_work_group_sizes(device, global_items, profile, candidates);
  if (results.empty()) {
    return {1, device.model().kernel_seconds(
                   {"autotune_probe", xcl::NDRange(global_items, 1),
                    profile})};
  }
  return results.front();
}

}  // namespace eod::harness
