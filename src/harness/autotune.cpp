#include "harness/autotune.hpp"

#include <algorithm>
#include <cstdint>

#include "scibench/timer.hpp"
#include "xcl/executor.hpp"

namespace eod::harness {

std::vector<TuneResult> sweep_work_group_sizes(
    const xcl::Device& device, std::size_t global_items,
    const xcl::WorkloadProfile& profile,
    const std::vector<std::size_t>& candidates) {
  std::vector<TuneResult> results;
  for (const std::size_t wg : candidates) {
    if (wg > device.info().max_work_group_size) continue;
    if (wg > global_items) continue;
    // Pad the global size up to a work-group multiple, as launches do.
    const std::size_t global = (global_items + wg - 1) / wg * wg;
    xcl::KernelLaunchStats stats{"autotune_probe",
                                 xcl::NDRange(global, wg), profile};
    results.push_back({wg, device.model().kernel_seconds(stats)});
  }
  std::sort(results.begin(), results.end(),
            [](const TuneResult& a, const TuneResult& b) {
              return a.modeled_seconds < b.modeled_seconds;
            });
  return results;
}

TuneResult autotune_work_group(const xcl::Device& device,
                               std::size_t global_items,
                               const xcl::WorkloadProfile& profile,
                               const std::vector<std::size_t>& candidates) {
  const auto results =
      sweep_work_group_sizes(device, global_items, profile, candidates);
  if (results.empty()) {
    return {1, device.model().kernel_seconds(
                   {"autotune_probe", xcl::NDRange(global_items, 1),
                    profile})};
  }
  return results.front();
}

std::vector<TierTuneResult> sweep_dispatch_tiers(const xcl::Kernel& kernel,
                                                 const xcl::NDRange& range,
                                                 const xcl::Device& device,
                                                 int reps) {
  std::vector<xcl::DispatchMode> candidates{xcl::DispatchMode::kItem};
  if (kernel.has_span()) candidates.push_back(xcl::DispatchMode::kSpan);
  if (kernel.has_simd()) candidates.push_back(xcl::DispatchMode::kSimd);

  struct ModeGuard {
    xcl::DispatchMode prev = xcl::dispatch_mode();
    ~ModeGuard() { xcl::set_dispatch_mode(prev); }
  } guard;

  std::vector<TierTuneResult> results;
  for (const xcl::DispatchMode mode : candidates) {
    xcl::set_dispatch_mode(mode);
    xcl::execute_ndrange(kernel, range, device);  // warmup
    std::uint64_t best = ~std::uint64_t{0};
    for (int i = 0; i < std::max(1, reps); ++i) {
      const std::uint64_t t0 = scibench::now_ns();
      xcl::execute_ndrange(kernel, range, device);
      const std::uint64_t t1 = scibench::now_ns();
      best = std::min(best, t1 - t0);
    }
    results.push_back({mode, static_cast<double>(best) * 1e-9});
  }
  std::sort(results.begin(), results.end(),
            [](const TierTuneResult& a, const TierTuneResult& b) {
              return a.seconds < b.seconds;
            });
  return results;
}

TierTuneResult autotune_dispatch_tier(const xcl::Kernel& kernel,
                                      const xcl::NDRange& range,
                                      const xcl::Device& device, int reps) {
  return sweep_dispatch_tiers(kernel, range, device, reps).front();
}

}  // namespace eod::harness
