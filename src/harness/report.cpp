#include "harness/report.hpp"

#include <iomanip>

#include "harness/problem_size.hpp"
#include "scibench/logger.hpp"
#include "sim/testbed.hpp"

namespace eod::harness {

namespace {

const char* class_of(const std::string& device_name) {
  return to_string(sim::spec_by_name(device_name).klass);
}

}  // namespace

void print_panel(std::ostream& os, const std::string& title,
                 const std::vector<Measurement>& measurements) {
  os << "== " << title << " ==\n";
  os << std::left << std::setw(18) << "device" << std::setw(14) << "class"
     << std::setw(8) << "size" << std::right << std::setw(12) << "mean(ms)"
     << std::setw(12) << "median(ms)" << std::setw(9) << "cov"
     << std::setw(12) << "q1(ms)" << std::setw(12) << "q3(ms)"
     << std::setw(8) << "loops" << '\n';
  for (const Measurement& m : measurements) {
    const scibench::Summary s = m.time_summary();
    os << std::left << std::setw(18) << m.device << std::setw(14)
       << class_of(m.device) << std::setw(8) << to_string(m.size)
       << std::right << std::fixed << std::setprecision(4) << std::setw(12)
       << s.mean << std::setw(12) << s.median << std::setprecision(3)
       << std::setw(9) << s.cov() << std::setprecision(4) << std::setw(12)
       << s.q1 << std::setw(12) << s.q3 << std::setw(8) << m.loop_iterations
       << '\n';
    os.unsetf(std::ios::fixed);
  }
}

void print_long_table(std::ostream& os,
                      const std::vector<Measurement>& measurements) {
  scibench::TableLogger log(os, {"benchmark", "device", "class", "size",
                                 "sample", "time_ms", "energy_j"});
  for (const Measurement& m : measurements) {
    for (std::size_t i = 0; i < m.time_samples_ms.size(); ++i) {
      log.row({m.benchmark, '"' + m.device + '"', '"' + std::string(
                   class_of(m.device)) + '"',
               to_string(m.size), std::to_string(i),
               scibench::TableLogger::num(m.time_samples_ms[i]),
               scibench::TableLogger::num(
                   i < m.energy_samples_j.size() ? m.energy_samples_j[i]
                                                 : 0.0)});
    }
  }
}

void print_energy_panel(std::ostream& os, const std::string& title,
                        const std::vector<Measurement>& measurements) {
  os << "== " << title << " ==\n";
  os << std::left << std::setw(12) << "benchmark" << std::setw(18)
     << "device" << std::right << std::setw(14) << "mean(J)"
     << std::setw(14) << "median(J)" << std::setw(9) << "cov" << '\n';
  for (const Measurement& m : measurements) {
    const scibench::Summary s = m.energy_summary();
    os << std::left << std::setw(12) << m.benchmark << std::setw(18)
       << m.device << std::right << std::fixed << std::setprecision(3)
       << std::setw(14) << s.mean << std::setw(14) << s.median
       << std::setw(9) << s.cov() << '\n';
    os.unsetf(std::ios::fixed);
  }
}

void print_table1(std::ostream& os) {
  os << "== Table 1: Hardware ==\n";
  os << std::left << std::setw(18) << "Name" << std::setw(8) << "Vendor"
     << std::setw(6) << "Type" << std::setw(12) << "Series" << std::right
     << std::setw(7) << "Cores" << std::setw(17) << "Clock(min/max/t)"
     << std::setw(19) << "Cache KiB(L1/2/3)" << std::setw(6) << "TDP"
     << std::setw(9) << "Launch" << '\n';
  for (const sim::DeviceSpec& d : sim::testbed()) {
    std::string clock = std::to_string(d.clock_min_mhz) + "/" +
                        (d.clock_max_mhz ? std::to_string(d.clock_max_mhz)
                                         : std::string("-")) +
                        "/" +
                        (d.clock_turbo_mhz
                             ? std::to_string(d.clock_turbo_mhz)
                             : std::string("-"));
    std::string cache = std::to_string(d.l1_kib) + "/" +
                        std::to_string(d.l2_kib) + "/" +
                        (d.l3_kib ? std::to_string(d.l3_kib)
                                  : std::string("-"));
    os << std::left << std::setw(18) << d.name << std::setw(8) << d.vendor
       << std::setw(6)
       << (d.klass == sim::AcceleratorClass::kCpu
               ? "CPU"
               : d.klass == sim::AcceleratorClass::kMic ? "MIC" : "GPU")
       << std::setw(12) << d.series << std::right << std::setw(7)
       << d.core_count << std::setw(17) << clock << std::setw(19) << cache
       << std::setw(6) << d.tdp_w << std::setw(9) << d.launch_date << '\n';
  }
}

void print_table2(std::ostream& os) {
  os << "== Table 2: OpenDwarfs workload scale parameters (footprint "
        "verified against the device allocator) ==\n";
  os << std::left << std::setw(10) << "benchmark" << std::setw(10) << "size"
     << std::setw(14) << "scale" << std::right << std::setw(14)
     << "footprint(KiB)" << '\n';
  for (const Table2Row& row : table2()) {
    for (std::size_t i = 0; i < row.sizes.size(); ++i) {
      os << std::left << std::setw(10) << row.benchmark << std::setw(10)
         << to_string(row.sizes[i]) << std::setw(14) << row.scale[i]
         << std::right << std::fixed << std::setprecision(1) << std::setw(14)
         << static_cast<double>(row.footprint[i]) / 1024.0 << '\n';
      os.unsetf(std::ios::fixed);
    }
  }
}

}  // namespace eod::harness
