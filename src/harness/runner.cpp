#include "harness/runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <optional>
#include <random>
#include <stdexcept>

#include "dwarfs/registry.hpp"
#include "obs/analysis/profile.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "xcl/check/session.hpp"
#include "sim/energy_model.hpp"
#include "sim/replay_cache.hpp"
#include "sim/testbed.hpp"
#include "xcl/queue.hpp"

namespace eod::harness {

namespace {

std::uint64_t mix_seed(const std::string& benchmark,
                       const std::string& device, dwarfs::ProblemSize size,
                       std::uint64_t seed) {
  std::uint64_t h = 0xcbf29ce484222325ull ^ seed;
  auto fold = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ull;
    }
  };
  fold(benchmark);
  fold(device);
  h ^= static_cast<std::uint64_t>(size) + 0x9e37ull;
  return h;
}

/// "trace.123.0.json" -> "trace.123.0.profile.json": the report lands next
/// to the trace it describes, with the same collision suffix.
std::string profile_path_for(const std::string& trace_path) {
  const std::size_t slash = trace_path.find_last_of("/\\");
  const std::size_t dot = trace_path.rfind('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return trace_path + ".profile.json";
  }
  return trace_path.substr(0, dot) + ".profile.json";
}

}  // namespace

Measurement measure(dwarfs::Dwarf& dwarf, dwarfs::ProblemSize size,
                    xcl::Device& device, const MeasureOptions& options) {
  Measurement m;
  m.benchmark = dwarf.name();
  m.device = device.name();
  m.size = size;

  // Observability sinks (DESIGN.md §11).  Recording is scoped to this
  // group: the flags are restored on every exit path, and the recorder is
  // reset up front so consecutive measurements write independent traces.
  // --profile analyzes the written trace, so it implies one.
  const std::string requested_trace =
      options.trace_path.empty() && options.profile
          ? std::string("trace.json")
          : options.trace_path;
  const bool want_trace = !requested_trace.empty();
  const bool want_obs = want_trace || !options.metrics_path.empty() ||
                        !options.manifest_path.empty();
  struct ObsGuard {
    bool prev_trace = obs::tracing_enabled();
    bool prev_timed = obs::timed_metrics_enabled();
    ~ObsGuard() {
      obs::set_tracing_enabled(prev_trace);
      obs::set_timed_metrics(prev_timed);
    }
  } obs_guard;
  if (want_trace) {
    obs::reset_tracing();
    obs::set_thread_lane_name("harness");
    obs::set_tracing_enabled(true);
  }
  if (want_obs) obs::set_timed_metrics(true);
  std::optional<obs::TraceSpan> measure_span;
  if (want_trace) measure_span.emplace("measure", "harness");

  if (!options.reuse_setup) {
    obs::TraceSpan span("setup", "harness");
    dwarf.setup(size);
  }

  // Tier override for the functional pass, restored on every exit path.
  // An unset option defers to default_dispatch_mode(), so `EOD_DISPATCH=simd
  // ctest` steers every measurement in the suite without the runner
  // stomping the hatch with kAuto.
  const xcl::DispatchMode dispatch =
      options.dispatch.value_or(xcl::default_dispatch_mode());
  struct DispatchModeGuard {
    xcl::DispatchMode prev = xcl::dispatch_mode();
    ~DispatchModeGuard() { xcl::set_dispatch_mode(prev); }
  } dispatch_guard;
  xcl::set_dispatch_mode(dispatch);

  // --dispatch=checked: the whole functional pass (bind-time allocations
  // included, so the shadow sees every buffer from birth) runs under a
  // CheckSession; the report lands on the Measurement.
  std::optional<xcl::check::CheckSession> check_session;
  if (dispatch == xcl::DispatchMode::kChecked && options.functional) {
    check_session.emplace();
  }

  xcl::Context ctx(device);
  xcl::Queue queue(ctx, options.queue_mode);
  queue.set_functional(options.functional);
  queue.set_record_launches(options.collect_counters);

  {
    obs::TraceSpan span("bind", "harness");
    dwarf.bind(ctx, queue);
  }
  queue.clear_events();  // bind-time transfers are host-setup, not measured
  {
    // The single functional pass: the warmup-equivalent real execution the
    // sampled loop is modeled from.
    obs::TraceSpan span("functional", "harness");
    dwarf.run();
  }

  // Aggregate the iteration's events into per-kernel segments (the paper
  // records kernel, setup and transfer segments via LibSciBench).
  std::map<std::string, KernelSegment> segs;
  for (const xcl::Event& e : queue.events()) {
    if (xcl::is_device_side(e.kind)) {
      KernelSegment& s = segs[e.label];
      s.kernel = e.label;
      ++s.launches;
      s.modeled_seconds += e.modeled_seconds();
      m.energy_joules += e.energy_j;
    } else {
      m.transfer_seconds += e.modeled_seconds();
    }
  }
  m.kernel_seconds = queue.modeled_kernel_seconds();
  m.span_seconds = queue.modeled_span_seconds();
  for (auto& [_, s] : segs) m.segments.push_back(s);

  dwarf.finish();
  if (options.validate) {
    obs::TraceSpan span("validate", "harness");
    m.validation = dwarf.validate();
    m.validated = true;
  }

  if (check_session.has_value()) {
    m.check_report = check_session->take_report();
    m.check_performed = true;
    check_session.reset();  // unpins kChecked before the unbind below
  }

  if (options.collect_counters) {
    // §4.3: cache/TLB events from a trace replay through this device's
    // hierarchy (two passes so the counters reflect the warm steady state,
    // like the paper's in-loop sampling), plus instruction/branch
    // estimates from the aggregate workload profile of the launch plan.
    // The replay runs through the batched/coalesced engine and is memoized
    // by trace content + hierarchy geometry, so repeated sweeps over the
    // same cell replay nothing.
    obs::TraceSpan span("counters.replay", "harness");
    const std::size_t hint = dwarf.trace_size_hint();
    const bool oversized = options.max_trace_accesses != 0 &&
                           hint > options.max_trace_accesses;
    sim::HierarchyCounters warm;
    bool have_trace = false;
    if (!oversized) {
      const sim::ReplayMemoEntry memo = sim::memoized_replay(
          [&dwarf](sim::TraceWriter& w) { dwarf.stream_trace(w); },
          sim::spec_by_name(device.name()),
          m.benchmark + "/" + dwarfs::to_string(size) + "/" + m.device);
      have_trace = memo.accesses > 0;
      warm = memo.warm;
    }
    xcl::WorkloadProfile total;
    for (const xcl::KernelLaunchStats& launch : queue.launches()) {
      total.flops += launch.profile.flops;
      total.int_ops += launch.profile.int_ops;
      total.bytes_read += launch.profile.bytes_read;
      total.bytes_written += launch.profile.bytes_written;
      total.branch_divergence = std::max(total.branch_divergence,
                                         launch.profile.branch_divergence);
    }
    m.counters = sim::derive_papi_counters(
        total, warm, device.info().clock_mhz * 1e-3, m.kernel_seconds,
        device.info().simd_width);
    m.counters_collected = have_trace;
  }
  dwarf.unbind();

  // ---- sampling: the >= 2 s loop, 50 samples, device-specific noise ----
  const double iter_s = std::max(m.kernel_seconds, 1e-9);
  m.loop_iterations = static_cast<std::size_t>(
      std::max(1.0, std::ceil(options.min_loop_seconds / iter_s)));

  const double cov = device.model().measurement_noise_cov();
  // Averaging over the loop shrinks the independent per-iteration spread,
  // but a run-level component (thermal / DVFS state of the run) does not
  // average out -- which is why the paper still sees clock-dependent CoV
  // after its 2 s loops.
  const double eff_cov = std::max(
      0.0005, cov / std::sqrt(static_cast<double>(m.loop_iterations)) +
                  0.08 * cov);

  std::mt19937_64 rng(mix_seed(m.benchmark, m.device, size, options.seed));
  std::normal_distribution<double> noise(1.0, eff_cov);
  // Occasional straggler iterations skew timing distributions right; add a
  // small lognormal tail so box plots look like real measurements.
  std::lognormal_distribution<double> tail(0.0, 0.5);

  const double power =
      m.kernel_seconds > 0.0 ? m.energy_joules / m.kernel_seconds : 0.0;
  const sim::EnergyInstrument instrument =
      device.type() == xcl::DeviceType::kGpu ? sim::EnergyInstrument::kNvml
                                             : sim::EnergyInstrument::kRapl;
  sim::EnergyMeter meter(instrument,
                         mix_seed(m.benchmark, m.device, size,
                                  options.seed ^ 0xE4E46Full));

  m.time_samples_ms.reserve(options.samples);
  m.energy_samples_j.reserve(options.samples);
  {
    obs::TraceSpan sampling_span("sampling", "harness", "samples",
                                 static_cast<double>(options.samples));
    for (std::size_t i = 0; i < options.samples; ++i) {
      obs::TraceSpan sample_span("sample", "harness");
      double factor = noise(rng);
      if ((rng() & 0x1F) == 0) {  // ~3% of samples catch a straggler
        factor += 0.02 * eff_cov / 0.002 * tail(rng) * 0.1;
      }
      factor = std::max(0.5, factor);
      m.time_samples_ms.push_back(iter_s * factor * 1e3);
      sample_span.set_arg("sample_ms", m.time_samples_ms.back());
      // §5.2: energy is measured "solely over the kernel execution", i.e.
      // one application iteration's kernels, not the whole 2 s sampling
      // loop.
      m.energy_samples_j.push_back(
          meter.measure(power, iter_s * factor).joules);
    }
  }

  // ---- artifact writes: trace, metrics snapshot, run manifest ----
  if (want_obs) {
    measure_span.reset();  // close the root span before serialising
    if (want_trace) {
      obs::set_tracing_enabled(false);  // stop recording into the file walk
      m.trace_path = obs::unique_artifact_path(requested_trace);
      if (!obs::write_chrome_trace(m.trace_path)) m.trace_path.clear();
    }
    const obs::MetricsSnapshot snap = obs::snapshot_metrics();
    if (!options.metrics_path.empty()) {
      m.metrics_path = obs::unique_artifact_path(options.metrics_path);
      if (!snap.write_file(m.metrics_path)) m.metrics_path.clear();
    }
    // In-process schedule analysis (--profile): parse the trace back from
    // disk — proving the DAG is recoverable from the artifact alone — and
    // drop the report next to it, before the manifest records its path.
    if (options.profile && !m.trace_path.empty()) {
      try {
        prof::ProfileInputs inputs;
        inputs.trace_path = m.trace_path;
        try {
          inputs.transfer_peak_gbs =
              sim::spec_by_name(m.device).transfer_bandwidth_gbs;
        } catch (const std::invalid_argument&) {
          // Not a Table 1 device (e.g. a test stub): no saturation peak.
        }
        prof::ProfileReport report = prof::profile_run(inputs);
        report.benchmark = m.benchmark;
        report.device = m.device;
        report.queue = xcl::to_string(queue.mode());
        const std::string path = profile_path_for(m.trace_path);
        std::ofstream f(path, std::ios::trunc);
        if (f && (f << report.to_json()).good()) m.profile_path = path;
      } catch (const std::exception&) {
        // A malformed trace must not fail the measurement it describes.
        m.profile_path.clear();
      }
    }
    if (!options.manifest_path.empty()) {
      obs::RunManifest manifest;
      manifest.benchmark = m.benchmark;
      manifest.size = dwarfs::to_string(size);
      manifest.device = m.device;
      manifest.devices = {m.device};
      manifest.dispatch = xcl::to_string(dispatch);
      if (const char* env = std::getenv("EOD_DISPATCH")) {
        manifest.dispatch_env = env;
      }
      manifest.queue = xcl::to_string(queue.mode());
      manifest.seed = options.seed;
      manifest.git_describe = obs::git_describe();
      manifest.timestamp = obs::utc_timestamp();
      manifest.samples = m.time_samples_ms.size();
      manifest.loop_iterations = m.loop_iterations;
      const scibench::Summary t = m.time_summary();
      manifest.time_mean_ms = t.mean;
      manifest.time_median_ms = t.median;
      manifest.time_cov = t.cov();
      manifest.energy_median_j = m.energy_summary().median;
      manifest.validated = m.validated;
      manifest.validation_ok = m.validation.ok;
      manifest.trace_path = m.trace_path;
      manifest.metrics_path = m.metrics_path;
      manifest.profile_path = m.profile_path;
      m.manifest_path = obs::unique_artifact_path(options.manifest_path);
      if (!manifest.write_json(m.manifest_path, snap)) {
        m.manifest_path.clear();
      }
    }
  }
  return m;
}

std::vector<Measurement> measure_all_devices(const std::string& benchmark,
                                             dwarfs::ProblemSize size,
                                             const MeasureOptions& options) {
  std::vector<Measurement> out;
  auto dwarf = dwarfs::create_dwarf(benchmark);
  MeasureOptions per_device = options;
  if (options.collect_counters) {
    // Warm the replay memo for every hierarchy in one streamed fan-out:
    // the trace is generated twice (cold + warm pass) for all 15 devices
    // together instead of twice per device.
    dwarf->setup(size);
    per_device.reuse_setup = true;
    const std::size_t hint = dwarf->trace_size_hint();
    if (hint > 0 && (options.max_trace_accesses == 0 ||
                     hint <= options.max_trace_accesses)) {
      std::vector<const sim::DeviceSpec*> specs;
      for (xcl::Device* dev : sim::testbed_devices()) {
        specs.push_back(&sim::spec_by_name(dev->name()));
      }
      (void)sim::prime_replay_memo(
          [&dwarf](sim::TraceWriter& w) { dwarf->stream_trace(w); }, specs,
          benchmark + "/" + dwarfs::to_string(size));
    }
  }
  for (xcl::Device* dev : sim::testbed_devices()) {
    out.push_back(measure(*dwarf, size, *dev, per_device));
    // One functional (optionally validated) pass over one generated
    // dataset is enough: results are device-independent, so later devices
    // run model-only, as if the same verified binary were shipped around
    // the cluster.
    per_device.functional = false;
    per_device.validate = false;
    per_device.reuse_setup = true;
  }
  return out;
}

}  // namespace eod::harness
