// Local work-group size auto-tuning (§7 future work): "Certain
// configuration parameters for the benchmarks, e.g. local workgroup size,
// are amenable to auto-tuning.  We plan to integrate auto-tuning into the
// benchmarking framework to provide confidence that the optimal parameters
// are used for each combination of code and accelerator."
//
// The tuner sweeps candidate work-group sizes for a given launch shape and
// workload profile and returns the fastest configuration under the device
// model (where wide-wavefront devices pay for partial SIMD groups).
#pragma once

#include <cstddef>
#include <vector>

#include "xcl/device.hpp"
#include "xcl/executor.hpp"
#include "xcl/kernel.hpp"
#include "xcl/modeling.hpp"
#include "xcl/ndrange.hpp"

namespace eod::harness {

struct TuneResult {
  std::size_t work_group = 0;
  double modeled_seconds = 0.0;
};

/// All candidates evaluated, sorted fastest-first.
[[nodiscard]] std::vector<TuneResult> sweep_work_group_sizes(
    const xcl::Device& device, std::size_t global_items,
    const xcl::WorkloadProfile& profile,
    const std::vector<std::size_t>& candidates = {8, 16, 32, 64, 128, 256});

/// The single best work-group size for the launch on this device.  Falls
/// back to a single-item group when no candidate fits the launch (all
/// larger than global_items or the device's group-size limit).
[[nodiscard]] TuneResult autotune_work_group(
    const xcl::Device& device, std::size_t global_items,
    const xcl::WorkloadProfile& profile,
    const std::vector<std::size_t>& candidates = {8, 16, 32, 64, 128, 256});

/// One measured dispatch-tier candidate (DESIGN.md §13).  Unlike the
/// work-group sweep above, the tier sweep is *measured*, not modeled: the
/// tiers differ in host-side execution strategy (per-item dispatch vs
/// autovectorized span loop vs explicit vectors), which the device timing
/// model deliberately does not see.
struct TierTuneResult {
  xcl::DispatchMode mode = xcl::DispatchMode::kItem;
  double seconds = 0.0;  ///< best-of-reps wall time of one launch
};

/// Executes `kernel` over `range` under each tier the kernel offers (item
/// always; span/simd when the corresponding body is registered) and
/// returns all candidates sorted fastest-first.  Each candidate runs one
/// warmup launch plus `reps` timed launches (best kept).  The kernel is
/// executed for real: callers tune with an idempotent kernel or accept the
/// buffer mutations.  The process dispatch mode is restored afterwards.
[[nodiscard]] std::vector<TierTuneResult> sweep_dispatch_tiers(
    const xcl::Kernel& kernel, const xcl::NDRange& range,
    const xcl::Device& device, int reps = 3);

/// The fastest tier for this kernel/range on this host.
[[nodiscard]] TierTuneResult autotune_dispatch_tier(
    const xcl::Kernel& kernel, const xcl::NDRange& range,
    const xcl::Device& device, int reps = 3);

}  // namespace eod::harness
